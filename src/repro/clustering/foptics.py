"""FOPTICS — fuzzy OPTICS ordering of uncertain data [13] (S14).

Kriegel & Pfeifle's hierarchical density-based method produces a
*cluster ordering* with per-object reachability values rather than a
flat partition.  Distances between uncertain objects are fuzzy; we use
the Monte-Carlo **expected Euclidean distance** between matched sample
pairs (the mean of the pairwise distance distribution, which is what
FOPTICS's expected-reachability formulation reduces to under matched
sampling).

The flat clustering needed by the paper's accuracy experiments is
extracted by a horizontal cut of the reachability plot; because the
paper compares algorithms at a fixed cluster count, :class:`FOPTICS`
optionally bisects the cut threshold until the requested ``n_clusters``
emerges (documented substitution — the original paper leaves extraction
unspecified).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._typing import SeedLike
from repro.clustering import _density
from repro.clustering._density import (
    gathered_pair_expected_distances,
    knn_candidate_indices,
)
from repro.clustering._sampling import SampleCacheMixin
from repro.clustering.base import ClusteringResult, UncertainClusterer
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


def expected_distance_matrix(
    samples: np.ndarray, block: Optional[int] = None
) -> np.ndarray:
    """``(n, n)`` Monte-Carlo expected Euclidean distances between objects.

    Computed in memory-bounded column blocks (see
    :mod:`repro.clustering._density`); ``block`` overrides the
    automatic block width.
    """
    return _density.expected_distance_matrix(samples, block=block)


def cluster_ordering_sparse(
    offsets: np.ndarray,
    neighbors: np.ndarray,
    neighbor_dists: np.ndarray,
    core_dist: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """OPTICS core loop over a CSR distance graph.

    Same control flow as :func:`cluster_ordering` — one dense pending
    array, masked argmin per step (so near-tie resolution is identical)
    — but reachability updates touch only the current object's graph
    neighbors.  With the complete graph (``knn_cap = n - 1``) this is
    bitwise the dense loop; with a capped graph, objects outside the
    neighbor set simply never receive updates through the current
    object (the lossy approximation the cap buys its memory bound
    with).
    """
    n = offsets.shape[0] - 1
    processed = np.zeros(n, dtype=bool)
    reachability = np.full(n, np.inf)
    ordering = np.empty(n, dtype=np.int64)
    position = 0
    pending = np.full(n, np.inf)
    for start in range(n):
        if processed[start]:
            continue
        pending[start] = 0.0
        while True:
            masked = np.where(processed, np.inf, pending)
            current = int(np.argmin(masked))
            if not np.isfinite(masked[current]):
                break
            processed[current] = True
            reachability[current] = (
                pending[current] if position > 0 else np.inf
            )
            if pending[current] == 0.0:
                reachability[current] = np.inf  # ordering seed
            ordering[position] = current
            position += 1
            row = slice(offsets[current], offsets[current + 1])
            nbr = neighbors[row]
            new_reach = np.maximum(core_dist[current], neighbor_dists[row])
            improved = (~processed[nbr]) & (new_reach < pending[nbr])
            pending[nbr[improved]] = new_reach[improved]
    return ordering, reachability


def knn_core_distances(
    offsets: np.ndarray,
    neighbor_dists: np.ndarray,
    min_pts: int,
) -> np.ndarray:
    """Core distances over a CSR distance graph (self counts, d = 0).

    Per object the candidate multiset is ``{0.0} ∪ {distances to graph
    neighbors}``; with the complete graph this is exactly the dense
    row, so the ``min_pts``-th order statistic matches
    :func:`cluster_ordering`'s ``np.partition`` value bitwise.  Objects
    with fewer than ``min_pts - 1`` neighbors get ``inf`` (they can
    never anchor a reachability improvement).
    """
    n = offsets.shape[0] - 1
    core = np.full(n, np.inf)
    for i in range(n):
        row = neighbor_dists[offsets[i]:offsets[i + 1]]
        if row.size + 1 < min_pts:
            continue
        values = np.concatenate([[0.0], row])
        core[i] = np.partition(values, min_pts - 1)[min_pts - 1]
    return core


def cluster_ordering(
    distances: np.ndarray, min_pts: int
) -> tuple[np.ndarray, np.ndarray]:
    """OPTICS core loop: returns ``(ordering, reachability)``.

    ``reachability[p]`` is the reachability value of object ``p`` at the
    moment it was placed in the ordering (inf for each ordering seed).
    """
    n = distances.shape[0]
    if min_pts > n:
        raise InvalidParameterError(
            f"min_pts ({min_pts}) exceeds the number of objects ({n})"
        )
    # Core distance: distance to the min_pts-th nearest object (self counts).
    core_dist = np.partition(distances, min_pts - 1, axis=1)[:, min_pts - 1]

    processed = np.zeros(n, dtype=bool)
    reachability = np.full(n, np.inf)
    ordering = np.empty(n, dtype=np.int64)
    position = 0
    # Tentative reachability used as the priority key for unprocessed points.
    pending = np.full(n, np.inf)
    for start in range(n):
        if processed[start]:
            continue
        pending[start] = 0.0
        while True:
            # Next unprocessed object with the smallest pending reachability.
            masked = np.where(processed, np.inf, pending)
            current = int(np.argmin(masked))
            if not np.isfinite(masked[current]):
                break
            processed[current] = True
            reachability[current] = (
                pending[current] if position > 0 else np.inf
            )
            if pending[current] == 0.0:
                reachability[current] = np.inf  # ordering seed
            ordering[position] = current
            position += 1
            # Update reachability of the remaining objects through current.
            new_reach = np.maximum(core_dist[current], distances[current])
            improved = (~processed) & (new_reach < pending)
            pending[improved] = new_reach[improved]
    return ordering, reachability


def extract_by_threshold(
    ordering: np.ndarray, reachability: np.ndarray, threshold: float
) -> np.ndarray:
    """Horizontal cut: new cluster starts wherever reachability > threshold."""
    n = ordering.shape[0]
    labels = np.full(n, -1, dtype=np.int64)
    cluster_id = -1
    for pos in range(n):
        obj = int(ordering[pos])
        if reachability[obj] > threshold:
            cluster_id += 1
        labels[obj] = cluster_id
    return labels


class FOPTICS(SampleCacheMixin, UncertainClusterer):
    """Fuzzy OPTICS over uncertain objects [13].

    Parameters
    ----------
    min_pts:
        Neighborhood cardinality for core distances.
    n_samples:
        Monte-Carlo samples per object for the fuzzy distances.
    threshold:
        Reachability cut; ``None`` uses the 75th percentile of finite
        reachability values.
    n_clusters:
        When given, the cut threshold is bisected until (approximately)
        this many clusters are produced — used by the paper-style
        experiments that fix ``k`` across algorithms.
    knn_cap:
        When given, the expected-distance graph is capped at each
        object's ``knn_cap`` nearest neighbors *by sample-mean
        distance* (union-symmetrized), and the exact gathered ÊD
        kernel runs on those edges only — O(n · knn_cap) distances
        instead of the O(n²) matrix.  This path is **lossy** (nearest
        by expected position is not nearest by expected distance,
        and reachability chains cannot cross non-edges), except at
        ``knn_cap = n - 1`` where it is bitwise the dense ordering.
        Must be ``>= min_pts`` so core distances stay well-defined.

    Notes
    -----
    As a :class:`SampleCacheMixin` subclass, the off-line sample tensor
    can be pinned via ``sample_cache`` — the multi-restart engine and
    the experiment runners use this to draw it exactly once.
    """

    name = "FOPT"
    has_objective = False
    sample_randomness_only = True

    def __init__(
        self,
        min_pts: int = 4,
        n_samples: int = 32,
        threshold: Optional[float] = None,
        n_clusters: Optional[int] = None,
        knn_cap: Optional[int] = None,
    ):
        if min_pts < 1:
            raise InvalidParameterError(f"min_pts must be >= 1, got {min_pts}")
        if n_samples < 1:
            raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
        if threshold is not None and threshold <= 0:
            raise InvalidParameterError(f"threshold must be > 0, got {threshold}")
        if n_clusters is not None and n_clusters < 1:
            raise InvalidParameterError(
                f"n_clusters must be >= 1, got {n_clusters}"
            )
        if knn_cap is not None and knn_cap < min_pts:
            raise InvalidParameterError(
                f"knn_cap ({knn_cap}) must be >= min_pts ({min_pts}) so "
                "core distances stay well-defined"
            )
        self.min_pts = int(min_pts)
        self.n_samples = int(n_samples)
        self.threshold = threshold
        self.n_clusters = n_clusters
        self.knn_cap = None if knn_cap is None else int(knn_cap)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Order ``dataset`` and extract a flat clustering."""
        n = len(dataset)
        rng = ensure_rng(seed)
        min_pts = min(self.min_pts, n)

        # Off-line: one batched draw of the whole (n, S, m) tensor
        # (or the engine-injected shared cache).
        samples = self._draw_samples(dataset, rng)

        watch = Stopwatch()
        extras: dict = {}
        with watch.running():
            if self.knn_cap is not None and n > 1:
                offsets, neighbors, dists, n_edges = self._knn_distance_graph(
                    samples, min(self.knn_cap, n - 1)
                )
                core = knn_core_distances(offsets, dists, min_pts)
                ordering, reachability = cluster_ordering_sparse(
                    offsets, neighbors, dists, core
                )
                extras["knn_cap"] = self.knn_cap
                extras["n_graph_edges"] = n_edges
            else:
                distances = expected_distance_matrix(samples)
                ordering, reachability = cluster_ordering(distances, min_pts)
            labels, threshold = self._extract(ordering, reachability)
        extras.update(
            ordering=ordering.tolist(),
            reachability=reachability.tolist(),
            threshold=threshold,
        )
        return ClusteringResult(
            labels=labels,
            runtime_seconds=watch.elapsed_seconds,
            extras=extras,
        )

    @staticmethod
    def _knn_distance_graph(
        samples: np.ndarray, k_neighbors: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Union-symmetrized kNN graph with exact gathered ÊD weights.

        Returns ``(offsets, neighbors, distances, n_edges)`` in CSR
        form with ascending neighbor order per row; ``n_edges`` counts
        undirected edges.
        """
        n = samples.shape[0]
        nbr = knn_candidate_indices(samples.mean(axis=1), k_neighbors)
        ii = np.repeat(np.arange(n, dtype=np.int64), nbr.shape[1])
        jj = nbr.ravel().astype(np.int64)
        a = np.minimum(ii, jj)
        b = np.maximum(ii, jj)
        _, unique_idx = np.unique(a * n + b, return_index=True)
        a = a[unique_idx]
        b = b[unique_idx]
        eds = gathered_pair_expected_distances(samples, a, b)
        src = np.concatenate([a, b])
        dst = np.concatenate([b, a])
        val = np.concatenate([eds, eds])
        order = np.lexsort((dst, src))
        src, dst, val = src[order], dst[order], val[order]
        offsets = np.concatenate(
            [[0], np.cumsum(np.bincount(src, minlength=n))]
        ).astype(np.int64)
        return offsets, dst, val, int(a.size)

    def _extract(
        self, ordering: np.ndarray, reachability: np.ndarray
    ) -> tuple[np.ndarray, float]:
        finite = reachability[np.isfinite(reachability)]
        if finite.size == 0:
            # Single connected run: everything in one cluster.
            return np.zeros(ordering.shape[0], dtype=np.int64), float("inf")
        if self.threshold is not None:
            return (
                extract_by_threshold(ordering, reachability, self.threshold),
                self.threshold,
            )
        if self.n_clusters is None:
            cut = float(np.quantile(finite, 0.75))
            return extract_by_threshold(ordering, reachability, cut), cut
        # Bisection on the threshold to approach the requested k: the
        # number of clusters is monotonically non-increasing in the cut.
        lo = float(finite.min()) * 0.5
        hi = float(finite.max()) * 1.001
        best_labels = extract_by_threshold(ordering, reachability, hi)
        best_gap = abs(int(best_labels.max()) + 1 - self.n_clusters)
        best_cut = hi
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            labels = extract_by_threshold(ordering, reachability, mid)
            k = int(labels.max()) + 1
            gap = abs(k - self.n_clusters)
            if gap < best_gap:
                best_labels, best_gap, best_cut = labels, gap, mid
            if k > self.n_clusters:
                lo = mid
            elif k < self.n_clusters:
                hi = mid
            else:
                break
        return best_labels, best_cut
