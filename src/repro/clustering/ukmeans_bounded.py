"""Triangle-inequality-bounded UK-means: Elkan/Hamerly on uncertain data.

The sample-based expected squared-Euclidean distance decomposes (the
same identity behind fast UK-means, Eq. (8) of the paper) as

    ED(o_i, c_j) = ||mu_hat_i - c_j||^2 + v_i,

where ``mu_hat_i`` is the object's *sample mean* and ``v_i`` the mean
squared deviation of its samples around it.  ``v_i`` does not depend on
the centroid, so the ED argmin per object coincides with the nearest
centroid on the *sample-mean plane* — a genuine metric space where the
triangle inequality holds.  That makes the classic accelerated K-means
bounds applicable verbatim:

* **Elkan** — a per-object upper bound ``ub_i`` on the plane distance
  to the assigned centroid, a full ``(n, k)`` lower-bound matrix, and a
  ``k x k`` centroid-centroid distance matrix.  A whole assignment row
  is skipped when ``ub_i < 0.5 * min_l cc(a_i, l)``; surviving rows
  prune candidate centroids via ``lb`` and the half-distance test.
* **Hamerly** — the memory-light variant: one lower bound per object
  (distance to the second-closest centroid).  Rows failing the combined
  test recompute in full.

Losslessness: all skip/prune tests use *strict* inequalities on exact
plane distances, so a centroid that ties the winner is never pruned,
and every expected distance that is actually compared is computed with
the literal :class:`BasicUKMeans` Monte-Carlo kernel on the same sample
tensor — identical arithmetic, identical reduction order, identical
argmin tie-breaking.  Assignments therefore reproduce
``BasicUKMeans`` exactly (the 20-seed regression in
``tests/test_scale_path.py`` pins this, like the pruning family's).
The only theoretical hazard is ulp-level noise in the Monte-Carlo
kernel flipping a *near*-tie that the exact plane geometry calls
strictly — the same accepted hazard class as MinMax-BB/cluster-shift
bound arithmetic, pinned empirically by the same regression style.

As in the paper's methodology (Section 5.2.2) the time spent building
and maintaining bound structures is excluded from the clustering-time
measurement; only expected-distance evaluations and the Lloyd updates
are timed, which is what makes the skip counters meaningful speedup
proxies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.clustering._repair import repair_empty_clusters
from repro.clustering._sampling import SampleCacheMixin
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import random_seed_indices
from repro.clustering.ukmeans import ukmeans_objective
from repro.exceptions import InvalidParameterError, warn_convergence
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


def _center_to_center(centers: np.ndarray) -> np.ndarray:
    """Exact ``(k, k)`` centroid-centroid Euclidean distances."""
    diff = centers[:, None, :] - centers[None, :, :]
    return np.sqrt(np.einsum("klm,klm->kl", diff, diff))


def _half_nearest_other(cc: np.ndarray) -> np.ndarray:
    """``s_j = 0.5 * min_{l != j} cc(j, l)`` per centroid."""
    masked = cc.copy()
    np.fill_diagonal(masked, np.inf)
    return 0.5 * masked.min(axis=1)


class BoundedUKMeans(SampleCacheMixin, UncertainClusterer):
    """Elkan/Hamerly-bounded basic UK-means (lossless acceleration).

    Parameters
    ----------
    n_clusters:
        Number of output clusters ``k``.
    n_samples:
        Sample-set cardinality ``S`` per object for the ED integrals.
    max_iter:
        Iteration cap ``I``.
    bounds:
        ``"elkan"`` — full ``(n, k)`` lower-bound matrix (fewest ED
        evaluations, O(n*k) bound memory); ``"hamerly"`` — one lower
        bound per object (O(n) memory, whole-row skip only).

    Notes
    -----
    Supports the squared-Euclidean ED only (the decomposition the
    bounds rely on); for a custom point metric use
    :class:`BasicUKMeans`.  Assignments match ``BasicUKMeans`` exactly;
    ``extras["ed_evaluations"]`` / ``extras["ed_skipped"]`` count how
    many of the ``I * n * k`` expected-distance integrals were actually
    evaluated versus skipped by the bounds.
    """

    name = "bUKM-EH"

    def __init__(
        self,
        n_clusters: int,
        n_samples: int = 64,
        max_iter: int = 100,
        bounds: str = "elkan",
    ):
        if n_samples < 1:
            raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        if bounds not in ("elkan", "hamerly"):
            raise InvalidParameterError(
                f"bounds must be 'elkan' or 'hamerly', got {bounds!r}"
            )
        self.n_clusters = int(n_clusters)
        self.n_samples = int(n_samples)
        self.max_iter = int(max_iter)
        self.bounds = bounds
        self.name = "bUKM-EH" if bounds == "elkan" else "bUKM-H"

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset``; assignments equal ``BasicUKMeans`` exactly."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)

        # Off-line phase: identical draw order to BasicUKMeans.
        samples = self._draw_samples(dataset, rng)
        sample_means = samples.mean(axis=1)

        seeds = random_seed_indices(n, k, rng)
        centers = sample_means[seeds].copy()

        watch = Stopwatch()
        iterations = 0
        converged = False
        assignment = np.full(n, -1, dtype=np.int64)
        ed_evaluations = 0
        rows_skipped = 0
        # Bound state (built after the first full iteration): ``ub`` is
        # an upper bound on the plane distance to the assigned centroid;
        # ``lb`` is (n, k) per-centroid lower bounds (Elkan) or (n,)
        # second-closest lower bounds (Hamerly).
        ub: Optional[np.ndarray] = None
        lb: Optional[np.ndarray] = None
        with watch.running():
            for iteration in range(self.max_iter):
                iterations += 1
                if iteration == 0:
                    # First iteration is a full pass (bounds need a seed
                    # state) — the literal BasicUKMeans kernel.
                    distances = self._expected_distances(samples, centers)
                    ed_evaluations += n * k
                    new_assignment = np.argmin(distances, axis=1).astype(np.int64)
                else:
                    if self.bounds == "elkan":
                        new_assignment, n_eds, n_rows_skipped = (
                            self._elkan_assignment(
                                samples, sample_means, centers, assignment,
                                ub, lb, watch,
                            )
                        )
                    else:
                        new_assignment, n_eds, n_rows_skipped = (
                            self._hamerly_assignment(
                                samples, sample_means, centers, assignment,
                                ub, lb, watch,
                            )
                        )
                    ed_evaluations += n_eds
                    rows_skipped += n_rows_skipped
                moves = repair_empty_clusters(
                    new_assignment, sample_means, centers, k
                )
                if moves and ub is not None:
                    # A repaired victim now belongs to a different
                    # centroid: its upper bound referred to the old one
                    # and is invalid — recompute it exactly.  Elkan's
                    # per-centroid lower bounds are assignment-
                    # independent and stay valid; Hamerly's single
                    # second-closest bound is relative to the assigned
                    # centroid, so reset it to the trivial 0.
                    self._repair_bounds(
                        moves, sample_means, centers, ub, lb
                    )
                if np.array_equal(new_assignment, assignment):
                    converged = True
                    break
                assignment = new_assignment
                if iteration == 0:
                    watch.stop()
                    plane = self._plane_distances(sample_means, centers)
                    if self.bounds == "elkan":
                        lb = plane
                    else:
                        second = plane.copy()
                        second[np.arange(n), assignment] = np.inf
                        lb = second.min(axis=1)
                    ub = plane[np.arange(n), assignment].copy()
                    watch.start()
                old_centers = centers.copy()
                for c in range(k):
                    members = assignment == c
                    if members.any():
                        centers[c] = sample_means[members].mean(axis=0)
                # Bound decay by actual centroid displacement (untimed
                # bound maintenance, like pruning-structure time in the
                # pruning family).
                watch.stop()
                drift = np.sqrt(
                    np.einsum(
                        "km,km->k",
                        centers - old_centers,
                        centers - old_centers,
                    )
                )
                if self.bounds == "elkan":
                    np.maximum(lb - drift[None, :], 0.0, out=lb)
                else:
                    np.maximum(lb - drift.max(), 0.0, out=lb)
                ub += drift[assignment]
                watch.start()
        if not converged:
            warn_convergence(
                f"{self.name} hit max_iter={self.max_iter} before convergence"
            )
        total_pairs = iterations * n * k
        ed_skipped = total_pairs - ed_evaluations
        return ClusteringResult(
            labels=assignment,
            objective=ukmeans_objective(dataset, assignment),
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            extras={
                "ed_evaluations": ed_evaluations,
                "ed_skipped": ed_skipped,
                "skip_rate": ed_skipped / total_pairs if total_pairs else 0.0,
                "rows_skipped": rows_skipped,
                "bounds": self.bounds,
                "n_samples": self.n_samples,
            },
        )

    # ------------------------------------------------------------------
    # Assignment steps
    # ------------------------------------------------------------------
    def _elkan_assignment(
        self,
        samples: np.ndarray,
        sample_means: np.ndarray,
        centers: np.ndarray,
        assignment: IntArray,
        ub: np.ndarray,
        lb: np.ndarray,
        watch: Stopwatch,
    ) -> Tuple[IntArray, int, int]:
        """One Elkan-bounded assignment pass.

        Returns ``(new_assignment, ed_evaluations, rows_skipped)``.
        All comparisons that *prune* are strict, so exact plane ties are
        never pruned and the surviving argmin (over EDs computed with
        the BasicUKMeans kernel, pruned entries at +inf) reproduces
        ``np.argmin`` over the full row.
        """
        n, k = sample_means.shape[0], centers.shape[0]
        watch.stop()
        cc = _center_to_center(centers)
        s = _half_nearest_other(cc)
        s_a = s[assignment]
        # Whole-row skip: ub strictly inside the half-gap of the
        # assigned centroid means it is the unique plane argmin.
        active = ~(ub < s_a)
        # Tighten ub to the exact plane distance for surviving rows,
        # then re-test.
        for j in range(k):
            rows = np.flatnonzero(active & (assignment == j))
            if rows.size == 0:
                continue
            diff = sample_means[rows] - centers[j]
            d = np.sqrt(np.einsum("nm,nm->n", diff, diff))
            ub[rows] = d
            lb[rows, j] = d
        active &= ~(ub < s_a)
        new_assignment = assignment.copy()
        rows_skipped = int(n - active.sum())
        ed_evaluations = 0
        if active.any():
            act = np.flatnonzero(active)
            a_act = assignment[act]
            # Candidate centroids per active row: survive both the
            # lower-bound and the half-distance tests (strict pruning).
            cand = lb[act] <= ub[act, None]
            cand &= 0.5 * cc[a_act] <= ub[act, None]
            cand[np.arange(act.size), a_act] = True
            # Refresh surviving lower bounds with exact plane distances
            # and prune again (still strict).
            for j in range(k):
                local = np.flatnonzero(cand[:, j] & (a_act != j))
                if local.size == 0:
                    continue
                rows = act[local]
                diff = sample_means[rows] - centers[j]
                d = np.sqrt(np.einsum("nm,nm->n", diff, diff))
                lb[rows, j] = d
                cand[local, j] = d <= ub[rows]
            multi = cand.sum(axis=1) > 1
            if multi.any():
                # Exact ED integrals for the surviving candidates —
                # the literal BasicUKMeans kernel, batched per centroid
                # (this is the timed clustering work).
                eds = np.full((act.size, k), np.inf)
                watch.start()
                for j in range(k):
                    local = np.flatnonzero(multi & cand[:, j])
                    if local.size == 0:
                        continue
                    rows = act[local]
                    diff = samples[rows] - centers[j]
                    eds[local, j] = np.einsum(
                        "nsm,nsm->ns", diff, diff
                    ).mean(axis=1)
                    ed_evaluations += int(rows.size)
                watch.stop()
                local_multi = np.flatnonzero(multi)
                winners = np.argmin(eds[local_multi], axis=1).astype(np.int64)
                rows = act[local_multi]
                new_assignment[rows] = winners
                # lb holds fresh exact plane distances for every final
                # candidate, so the new ub is an exact gather.
                ub[rows] = lb[rows, winners]
        watch.start()
        return new_assignment, ed_evaluations, rows_skipped

    def _hamerly_assignment(
        self,
        samples: np.ndarray,
        sample_means: np.ndarray,
        centers: np.ndarray,
        assignment: IntArray,
        ub: np.ndarray,
        lb: np.ndarray,
        watch: Stopwatch,
    ) -> Tuple[IntArray, int, int]:
        """One Hamerly-bounded assignment pass.

        Rows are either fully skipped (strict plane-geometry guarantee)
        or recomputed with a full BasicUKMeans ED row — bitwise the
        Basic argmin on every recomputed row.
        """
        n, k = sample_means.shape[0], centers.shape[0]
        watch.stop()
        cc = _center_to_center(centers)
        s = _half_nearest_other(cc)
        bound = np.maximum(s[assignment], lb)
        active = ~(ub < bound)
        for j in range(k):
            rows = np.flatnonzero(active & (assignment == j))
            if rows.size == 0:
                continue
            diff = sample_means[rows] - centers[j]
            ub[rows] = np.sqrt(np.einsum("nm,nm->n", diff, diff))
        active &= ~(ub < bound)
        new_assignment = assignment.copy()
        rows_skipped = int(n - active.sum())
        ed_evaluations = 0
        if active.any():
            act = np.flatnonzero(active)
            watch.start()
            eds = np.empty((act.size, k))
            for j in range(k):
                diff = samples[act] - centers[j]
                eds[:, j] = np.einsum("nsm,nsm->ns", diff, diff).mean(axis=1)
            ed_evaluations = int(act.size * k)
            watch.stop()
            winners = np.argmin(eds, axis=1).astype(np.int64)
            new_assignment[act] = winners
            # Refresh both bounds from exact plane distances.
            plane = np.empty((act.size, k))
            for j in range(k):
                diff = sample_means[act] - centers[j]
                plane[:, j] = np.sqrt(np.einsum("nm,nm->n", diff, diff))
            ub[act] = plane[np.arange(act.size), winners]
            plane[np.arange(act.size), winners] = np.inf
            lb[act] = plane.min(axis=1)
        watch.start()
        return new_assignment, ed_evaluations, rows_skipped

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _repair_bounds(
        self,
        moves: List[Tuple[int, int]],
        sample_means: np.ndarray,
        centers: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
    ) -> None:
        """Re-anchor bounds of empty-cluster-repair victims."""
        for cluster, victim in moves:
            diff = sample_means[victim] - centers[cluster]
            ub[victim] = float(np.sqrt(diff @ diff))
            if self.bounds == "hamerly":
                lb[victim] = 0.0

    @staticmethod
    def _plane_distances(
        sample_means: np.ndarray, centers: np.ndarray
    ) -> np.ndarray:
        """Exact ``(n, k)`` sample-mean-plane Euclidean distances."""
        n, k = sample_means.shape[0], centers.shape[0]
        out = np.empty((n, k))
        for j in range(k):
            diff = sample_means - centers[j]
            out[:, j] = np.sqrt(np.einsum("nm,nm->n", diff, diff))
        return out

    def _expected_distances(
        self, samples: np.ndarray, centers: np.ndarray
    ) -> np.ndarray:
        """Full Monte-Carlo ED matrix — the BasicUKMeans kernel."""
        n = samples.shape[0]
        k = centers.shape[0]
        out = np.empty((n, k))
        for j in range(k):
            diff = samples - centers[j]
            out[:, j] = np.einsum("nsm,nsm->ns", diff, diff).mean(axis=1)
        return out
