"""Pruning-based UK-means variants: MinMax-BB, VDBiP, cluster-shift (S10).

These algorithms accelerate the *basic* UK-means by avoiding expected-
distance (ED) integral evaluations:

* **MinMax-BB** (Ngai et al. [16]) — per object and candidate centroid,
  cheap ``MinDist``/``MaxDist`` bounds from the object's bounding box
  prune centroids that cannot be the closest:  if
  ``MinDist(o, c) > min_c' MaxDist(o, c')`` then ``c`` is pruned.
* **VDBiP** (Kao et al. [11]) — bisector pruning from the Voronoi
  diagram of the centroids: if the object's box lies entirely on
  centroid ``c_j``'s side of the ``(c_j, c_l)`` bisector hyperplane,
  ``c_l`` is pruned; when a single candidate survives, no ED at all is
  computed.
* **cluster-shift** (Ngai et al. [17]) — optional bound tightening
  reusing the previous iteration's exact EDs: if centroid ``c`` moved by
  ``delta`` then ``(sqrt(ED_old) - delta)^2 <= ED_new <=
  (sqrt(ED_old) + delta)^2``, sharpening both bounds.  The paper couples
  it with both pruners in the efficiency study.

All variants reproduce the basic UK-means assignment sequence exactly
(pruning is lossless); pruning effectiveness counters are reported in
``ClusteringResult.extras``.  As in the paper, time spent *building*
pruning structures is excluded from the clustering-time measurement.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._typing import SeedLike
from repro.clustering._repair import repair_empty_clusters
from repro.clustering._sampling import SampleCacheMixin
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import random_seed_indices
from repro.clustering.ukmeans import ukmeans_objective
from repro.exceptions import InvalidParameterError, warn_convergence
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


class _PruningUKMeansBase(SampleCacheMixin, UncertainClusterer):
    """Shared machinery of the pruning-based UK-means variants."""

    def __init__(
        self,
        n_clusters: int,
        n_samples: int = 64,
        max_iter: int = 100,
        cluster_shift: bool = True,
    ):
        if n_samples < 1:
            raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = int(n_clusters)
        self.n_samples = int(n_samples)
        self.max_iter = int(max_iter)
        self.cluster_shift = bool(cluster_shift)

    # -- strategy hook --------------------------------------------------
    def _candidate_mask(
        self,
        boxes_lower: np.ndarray,
        boxes_upper: np.ndarray,
        centers: np.ndarray,
    ) -> np.ndarray:
        """Boolean ``(n, k)`` mask of candidate centroids per object."""
        raise NotImplementedError

    # -- main loop -------------------------------------------------------
    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset``; see class docstring."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)

        # Off-line phase (untimed, as in the paper): samples and boxes.
        samples = self._draw_samples(dataset, rng)
        sample_means = samples.mean(axis=1)
        boxes_lower = np.vstack([obj.region.lower for obj in dataset])
        boxes_upper = np.vstack([obj.region.upper for obj in dataset])

        seeds = random_seed_indices(n, k, rng)
        centers = sample_means[seeds].copy()

        ed_matrix = np.full((n, k), np.nan)  # cached exact EDs (cluster-shift)
        # Iteration at which each ed_matrix entry was computed (-1 =
        # never).  The shift bound must account for the *cumulative*
        # centroid displacement since that iteration, not just the last
        # step — a cached ED can survive many iterations while its
        # centroid keeps drifting.
        ed_iteration = np.full((n, k), -1, dtype=np.int64)
        centers_log: List[np.ndarray] = []
        ed_computed = 0
        ed_pruned = 0

        watch = Stopwatch()
        iterations = 0
        converged = False
        assignment = np.full(n, -1, dtype=np.int64)
        with watch.running():
            for iteration in range(self.max_iter):
                iterations += 1
                # Pruning-structure construction (bounding-box bounds /
                # Voronoi bisectors / shift bounds) is excluded from the
                # clustering time, exactly as in Section 5.2.2 of the
                # paper ("pruning times ... were discarded").
                watch.stop()
                centers_log.append(centers.copy())
                candidates = self._candidate_mask(boxes_lower, boxes_upper, centers)
                if self.cluster_shift and iteration > 0:
                    candidates = self._tighten_with_shift(
                        candidates, ed_matrix, ed_iteration, centers, centers_log
                    )
                watch.start()
                new_assignment = np.empty(n, dtype=np.int64)
                cand_counts = candidates.sum(axis=1)
                # Fully pruned objects: assigned without any ED integral.
                single = cand_counts == 1
                if single.any():
                    new_assignment[single] = np.argmax(candidates[single], axis=1)
                    ed_pruned += int((k - 1) * single.sum())
                multi = ~single
                if multi.any():
                    # Batch the surviving ED integrals per centroid.
                    eds_multi = np.full((n, k), np.inf)
                    for j in range(k):
                        rows = np.flatnonzero(multi & candidates[:, j])
                        if rows.size == 0:
                            continue
                        diff = samples[rows] - centers[j]
                        eds = np.einsum("nsm,nsm->ns", diff, diff).mean(axis=1)
                        eds_multi[rows, j] = eds
                        ed_matrix[rows, j] = eds
                        ed_iteration[rows, j] = iteration
                        ed_computed += int(rows.size)
                    n_multi = int(multi.sum())
                    ed_pruned += int(n_multi * k - candidates[multi].sum())
                    new_assignment[multi] = np.argmin(eds_multi[multi], axis=1)
                repair_empty_clusters(new_assignment, sample_means, centers, k)
                if np.array_equal(new_assignment, assignment):
                    converged = True
                    break
                assignment = new_assignment
                for c in range(k):
                    members = assignment == c
                    if members.any():
                        centers[c] = sample_means[members].mean(axis=0)
        if not converged:
            warn_convergence(
                f"{self.name} hit max_iter={self.max_iter} before convergence"
            )
        total_pairs = ed_computed + ed_pruned
        return ClusteringResult(
            labels=assignment,
            objective=ukmeans_objective(dataset, assignment),
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            extras={
                "ed_evaluations": ed_computed,
                "ed_pruned": ed_pruned,
                "pruning_rate": ed_pruned / total_pairs if total_pairs else 0.0,
                "cluster_shift": self.cluster_shift,
            },
        )

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _tighten_with_shift(
        candidates: np.ndarray,
        ed_matrix: np.ndarray,
        ed_iteration: np.ndarray,
        centers: np.ndarray,
        centers_log: List[np.ndarray],
    ) -> np.ndarray:
        """Cluster-shift bound tightening [17].

        With ``delta(o, c) = ||c_now - c_at_cache||`` — the displacement
        of centroid ``c`` since the iteration at which ``ED_old(o, c)``
        was cached — the squared-Euclidean ED obeys ``(sqrt(ED_old) -
        delta)^2 <= ED_new <= (sqrt(ED_old) + delta)^2`` (triangle
        inequality inside the expectation, then Jensen).  Any centroid
        whose shifted lower bound exceeds another centroid's shifted
        upper bound cannot win and is pruned.

        Cache entries may be several iterations old (an entry is only
        refreshed when the object/centroid pair survives pruning), so
        the displacement is taken against the logged centroid position
        of the entry's own iteration — using only the last step's shift
        would understate ``delta`` and make the bounds invalid.
        """
        k = centers.shape[0]
        # shift_since[t, j] = ||centers[j] - centers_log[t][j]||
        history = np.stack(centers_log)  # (T, k, m)
        shift_since = np.linalg.norm(centers[None, :, :] - history, axis=2)
        have = np.isfinite(ed_matrix) & (ed_iteration >= 0)
        delta = shift_since[np.maximum(ed_iteration, 0), np.arange(k)[None, :]]
        roots = np.sqrt(np.where(have, np.maximum(ed_matrix, 0.0), 0.0))
        upper = np.where(have, (roots + delta) ** 2, np.inf)
        lower = np.where(have, np.maximum(roots - delta, 0.0) ** 2, 0.0)
        best_upper = upper.min(axis=1)
        keep = lower <= best_upper[:, None]
        tightened = candidates & keep
        # Safety: never prune every candidate of an object.
        dead = ~tightened.any(axis=1)
        if dead.any():
            tightened[dead] = candidates[dead]
        return tightened


class MinMaxBB(_PruningUKMeansBase):
    """MinMax bounding-box pruning UK-means [16].

    For each object box and centroid: ``MinDist`` is the squared distance
    to the nearest box point, ``MaxDist`` to the farthest corner.  The
    expected distance always lies between them, so any centroid with
    ``MinDist > min_c MaxDist`` is pruned before its ED integral is ever
    evaluated.
    """

    name = "MinMax-BB"

    def _candidate_mask(
        self,
        boxes_lower: np.ndarray,
        boxes_upper: np.ndarray,
        centers: np.ndarray,
    ) -> np.ndarray:
        n = boxes_lower.shape[0]
        k = centers.shape[0]
        min_dist = np.empty((n, k))
        max_dist = np.empty((n, k))
        for j in range(k):
            c = centers[j]
            below = np.maximum(boxes_lower - c, 0.0)
            above = np.maximum(c - boxes_upper, 0.0)
            gap = below + above
            min_dist[:, j] = np.einsum("ij,ij->i", gap, gap)
            far = np.maximum(np.abs(c - boxes_lower), np.abs(c - boxes_upper))
            max_dist[:, j] = np.einsum("ij,ij->i", far, far)
        threshold = max_dist.min(axis=1)
        return min_dist <= threshold[:, None]


class VDBiP(_PruningUKMeansBase):
    """Voronoi-diagram bisector pruning UK-means [11].

    For each ordered centroid pair ``(c_j, c_l)`` the bisector hyperplane
    is ``h(x) = ||x - c_j||^2 - ||x - c_l||^2 = -2 (c_j - c_l)·x +
    (||c_j||^2 - ||c_l||^2)``, a *linear* function whose maximum over a
    box is attained at a corner and computable per dimension.  If
    ``max_box h < 0``, the whole object lies strictly on ``c_j``'s side,
    so ``c_l`` can never be the closest centroid and is pruned.  An
    object whose box falls entirely inside one Voronoi cell is assigned
    with zero ED evaluations.
    """

    name = "VDBiP"

    def _candidate_mask(
        self,
        boxes_lower: np.ndarray,
        boxes_upper: np.ndarray,
        centers: np.ndarray,
    ) -> np.ndarray:
        n = boxes_lower.shape[0]
        k = centers.shape[0]
        center_sq = np.einsum("cj,cj->c", centers, centers)
        candidates = np.ones((n, k), dtype=bool)
        for j in range(k):
            for l in range(k):
                if l == j:
                    continue
                # h(x) = a·x + b with a = -2 (c_j - c_l), b = |c_j|^2 - |c_l|^2;
                # max over box per dimension picks lower/upper by sign of a.
                a = -2.0 * (centers[j] - centers[l])
                b = center_sq[j] - center_sq[l]
                max_h = (
                    np.where(a > 0, boxes_upper * a, boxes_lower * a).sum(axis=1) + b
                )
                # Box strictly on c_j's side of the (j, l) bisector:
                # c_l cannot be closest for these objects.
                candidates[max_h < 0.0, l] = False
        # Safety net (degenerate equalities): keep at least one candidate.
        dead = ~candidates.any(axis=1)
        if dead.any():
            candidates[dead] = True
        return candidates
