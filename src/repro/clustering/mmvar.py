"""MMVar — Minimizing the Variance of cluster mixture models [8] (S11).

MMVar's centroid is the cluster's mixture model ``C_MM`` (Eq. (10)) and
its compactness criterion is the centroid's variance
``J_MM(C) = sigma^2(C_MM)`` (Eq. (11)).  With Lemma 2, per dimension:

    sigma^2_j(C_MM) = Phi_j/|C| - (S_j/|C|)^2,

with ``Phi_j = sum_o mu2_j(o)`` and ``S_j = sum_o mu_j(o)`` — so, like
UCPC, MMVar admits O(m) add/remove objective updates and runs the same
local-search relocation scheme at O(I·k·n·m).

Proposition 2 of the paper proves ``J_MM(C) = J_UK(C)/|C|``: the
*per-cluster* criteria differ only by the cardinality factor.  The summed
objectives weight clusters differently, so the two algorithms may still
produce different partitions — which the experiments confirm.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import random_partition
from repro.exceptions import ConvergenceWarning, InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


class _MixtureStats:
    """Per-cluster Phi/S sufficient statistics for the MMVar objective."""

    __slots__ = ("phi", "mu_sum", "counts")

    def __init__(self, dataset: UncertainDataset, assignment: IntArray, k: int):
        self.phi = np.zeros((k, dataset.dim))
        self.mu_sum = np.zeros((k, dataset.dim))
        self.counts = np.zeros(k, dtype=np.int64)
        np.add.at(self.phi, assignment, dataset.mu2_matrix)
        np.add.at(self.mu_sum, assignment, dataset.mu_matrix)
        np.add.at(self.counts, assignment, 1)

    def objectives(self) -> np.ndarray:
        """``J_MM(C_c)`` for every cluster (0 when empty)."""
        safe = np.maximum(self.counts, 1).astype(np.float64)
        per = self.phi.sum(axis=1) / safe - np.einsum(
            "cj,cj->c", self.mu_sum, self.mu_sum
        ) / (safe * safe)
        return np.where(self.counts > 0, np.maximum(per, 0.0), 0.0)

    def objective_with(self, mu2: np.ndarray, mu: np.ndarray) -> np.ndarray:
        """``J_MM(C_c ∪ {o})`` for every cluster at once."""
        counts = (self.counts + 1).astype(np.float64)
        phi = self.phi.sum(axis=1) + mu2.sum()
        mu_sum = self.mu_sum + mu
        ups = np.einsum("cj,cj->c", mu_sum, mu_sum)
        return np.maximum(phi / counts - ups / (counts * counts), 0.0)

    def objective_without(self, cluster: int, mu2: np.ndarray, mu: np.ndarray) -> float:
        """``J_MM(C_c \\ {o})`` for the object's own cluster."""
        count = int(self.counts[cluster]) - 1
        if count <= 0:
            return 0.0
        phi = float(self.phi[cluster].sum() - mu2.sum())
        mu_sum = self.mu_sum[cluster] - mu
        return max(phi / count - float(mu_sum @ mu_sum) / (count * count), 0.0)

    def move(self, source: int, target: int, mu2: np.ndarray, mu: np.ndarray) -> None:
        """Relocate one object's contribution; O(m)."""
        self.phi[source] -= mu2
        self.mu_sum[source] -= mu
        self.counts[source] -= 1
        self.phi[target] += mu2
        self.mu_sum[target] += mu
        self.counts[target] += 1


class MMVar(UncertainClusterer):
    """MMVar local-search clustering [8].

    Parameters
    ----------
    n_clusters:
        Number of output clusters ``k``.
    max_iter:
        Cap on relocation sweeps.
    min_improvement:
        Relative threshold below which a relocation gain is ignored.
    """

    name = "MMV"

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        min_improvement: float = 1e-12,
    ):
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.min_improvement = float(min_improvement)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset`` by minimizing summed mixture-model variance."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)
        assignment = random_partition(n, k, rng)

        mu2 = dataset.mu2_matrix
        mu = dataset.mu_matrix
        watch = Stopwatch()
        history = []
        iterations = 0
        converged = False
        with watch.running():
            # Cached scalar statistics (same scheme as UCPC's inner loop):
            # J_MM(c) = phi_tot/n_c - ||S_c||^2/n_c^2 per Lemma 2.
            mu2_tot = mu2.sum(axis=1)
            mu_norm_sq = np.einsum("ij,ij->i", mu, mu)
            counts = np.bincount(assignment, minlength=k).astype(np.float64)
            phi_tot = np.zeros(k)
            mean_sums = np.zeros((k, dataset.dim))
            np.add.at(phi_tot, assignment, mu2_tot)
            np.add.at(mean_sums, assignment, mu)
            ups = np.einsum("cj,cj->c", mean_sums, mean_sums)

            def objectives_vector() -> np.ndarray:
                safe = np.maximum(counts, 1.0)
                per = phi_tot / safe - ups / (safe * safe)
                return np.where(counts > 0, np.maximum(per, 0.0), 0.0)

            objectives = objectives_vector()
            history.append(float(objectives.sum()))
            for _ in range(self.max_iter):
                iterations += 1
                moved = 0
                threshold = -self.min_improvement * max(1.0, abs(history[-1]))
                # Random scan order per sweep (same policy as UCPC).
                for idx in rng.permutation(n):
                    idx = int(idx)
                    own = int(assignment[idx])
                    if counts[own] <= 1.0:
                        continue
                    p = mu2_tot[idx]
                    cross = mean_sums @ mu[idx]
                    counts_plus = counts + 1.0
                    j_with = (phi_tot + p) / counts_plus - (
                        ups + 2.0 * cross + mu_norm_sq[idx]
                    ) / (counts_plus * counts_plus)
                    n_minus = counts[own] - 1.0
                    if n_minus == 0.0:
                        j_without = 0.0
                    else:
                        j_without = (phi_tot[own] - p) / n_minus - (
                            ups[own] - 2.0 * cross[own] + mu_norm_sq[idx]
                        ) / (n_minus * n_minus)
                    delta = (j_without - objectives[own]) + (j_with - objectives)
                    delta[own] = 0.0
                    best = int(np.argmin(delta))
                    if best != own and delta[best] < threshold:
                        counts[own] -= 1.0
                        counts[best] += 1.0
                        phi_tot[own] -= p
                        phi_tot[best] += p
                        mean_sums[own] -= mu[idx]
                        mean_sums[best] += mu[idx]
                        ups[own] = ups[own] - 2.0 * cross[own] + mu_norm_sq[idx]
                        ups[best] = ups[best] + 2.0 * cross[best] + mu_norm_sq[idx]
                        objectives[own] = max(j_without, 0.0)
                        objectives[best] = max(float(j_with[best]), 0.0)
                        assignment[idx] = best
                        moved += 1
                # Refresh exact sums once per sweep to cap round-off drift.
                ups = np.einsum("cj,cj->c", mean_sums, mean_sums)
                objectives = objectives_vector()
                history.append(float(objectives.sum()))
                if moved == 0:
                    converged = True
                    break
        if not converged:
            warnings.warn(
                f"MMVar hit max_iter={self.max_iter} before convergence",
                ConvergenceWarning,
                stacklevel=2,
            )
        return ClusteringResult(
            labels=assignment,
            objective=history[-1],
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            objective_history=history,
        )
