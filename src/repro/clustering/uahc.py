"""U-AHC — agglomerative hierarchical clustering of uncertain data [9] (S15).

Gullo et al.'s U-AHC merges, at every step, the pair of clusters whose
*mixture-model representatives* are closest, where each cluster is
summarized by the mixture of its members' pdfs (the MMVar centroid of
Eq. (10)) and proximity between representatives is scored with an
**information-theoretic** measure over the mixture pdfs.

Substitution note (documented in DESIGN.md): the original measure
combines entropy-based terms we cannot transcribe from [9]; our default
``linkage="jeffreys"`` scores proximity with the symmetric
Kullback-Leibler (Jeffreys) divergence between diagonal-Gaussian
approximations of the mixtures — an information-theoretic divergence
that, like the original, is sensitive to both location *and* variance
mismatch.  ``linkage="ed"`` provides the purely geometric alternative
(squared expected distance between the mixture representatives, Lemma 3
over Lemma 2 moments).

The full dendrogram is recorded; the flat clustering is obtained by
stopping at ``n_clusters`` clusters.

Under ``linkage="ed"`` the proximity between two *singleton* clusters is
exactly the squared expected distance ``ÊD`` of Lemma 3, so the initial
all-pairs structure is the dataset's pairwise ``ÊD`` matrix — the same
off-line artifact UK-medoids precomputes.  U-AHC therefore rides the
engine's pairwise-distance plane for that linkage: it declares
``wants_pairwise_ed`` and seeds the merge structure from the injected
``pairwise_ed_cache`` when one is present, computing the identical
matrix itself otherwise (bit-identical either way — both paths run
:func:`~repro.objects.distance.pairwise_squared_expected_distances`'s
kernel).  The Jeffreys linkage has no such precomputable seed and keeps
the blocked in-fit build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.distance import pairwise_squared_expected_distances
from repro.utils.timer import Stopwatch

#: Variance floor for the Gaussian approximations under the Jeffreys
#: linkage, whose divergence divides by per-dimension variances (point
#: masses would divide by zero).  The "ed" linkage never divides, so it
#: floors at exactly 0 (guarding only float cancellation in
#: ``mu2 - mu^2``): its initial singleton structure is the *unfloored*
#: pairwise ``ÊD`` matrix, and merged-row refreshes must stay on the
#: same scale — a positive floor there would bias every
#: merged-vs-singleton comparison by ``~2 m * floor``.
_VAR_FLOOR = 1e-9

#: Element budget for one `(rows, n, m)` broadcast block of the initial
#: all-pairs proximity — bounds the temporaries to a few MB so the
#: vectorized kernel stays cache-resident (same idiom as
#: ``DENSITY_BLOCK_ELEMENTS`` in :mod:`repro.clustering._density`).
_PROXIMITY_BLOCK_ELEMENTS = 1 << 19


@dataclass(frozen=True)
class MergeStep:
    """One dendrogram merge: clusters ``left`` and ``right`` at ``height``."""

    left: int
    right: int
    height: float
    size: int


class UAHC(UncertainClusterer):
    """Agglomerative hierarchical clustering with mixture representatives.

    Parameters
    ----------
    n_clusters:
        Number of flat clusters to cut the dendrogram at.
    linkage:
        ``"jeffreys"`` (default) — symmetric KL divergence between
        diagonal-Gaussian approximations of the cluster mixtures
        (information-theoretic, per [9]);
        ``"ed"`` — squared expected distance between mixture
        representatives (geometric).

    Notes
    -----
    Cluster mixtures are tracked by their summed moments (Lemma 2), so a
    merge is O(m) and each proximity-row refresh is O(n·m); the overall
    scan cost is Theta(n^2) per merge in the worst case — U-AHC belongs
    to the "slower" group of the paper's Figure 4.
    """

    name = "UAHC"
    has_objective = False
    #: Merge loop is interpreter-bound — the auto backend routes UAHC
    #: to the process pool.
    preferred_backend = "processes"

    def __init__(self, n_clusters: int, linkage: str = "jeffreys"):
        if linkage not in ("jeffreys", "ed"):
            raise InvalidParameterError(
                f"linkage must be 'jeffreys' or 'ed', got {linkage!r}"
            )
        self.n_clusters = int(n_clusters)
        self.linkage = linkage
        #: Jeffreys divides by variances and needs the positive floor;
        #: "ed" only sums them and must match its unfloored ÊD seed.
        self._var_floor = _VAR_FLOOR if linkage == "jeffreys" else 0.0
        #: Engine-injected shared ``ÊD`` matrix (the distance plane's
        #: injection point, like :attr:`UKMedoids.pairwise_ed_cache`);
        #: consumed by the ``"ed"`` linkage as the initial singleton
        #: proximity structure, ignored by ``"jeffreys"``.
        self.pairwise_ed_cache: Optional[np.ndarray] = None

    @property
    def wants_pairwise_ed(self) -> bool:
        """Only the ``"ed"`` linkage consumes the shared ``ÊD`` plane."""
        return self.linkage == "ed"

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset`` bottom-up; ``seed`` is unused (deterministic)."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)

        watch = Stopwatch()
        with watch.running():
            labels, merges = self._agglomerate(dataset, k)
        return ClusteringResult(
            labels=labels,
            n_iterations=n - k,
            runtime_seconds=watch.elapsed_seconds,
            extras={"merges": merges, "linkage": self.linkage},
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _agglomerate(
        self, dataset: UncertainDataset, k: int
    ) -> tuple[np.ndarray, List[MergeStep]]:
        n = len(dataset)
        # Per-active-cluster summed moments (mixture moments * count).
        mu_sum = dataset.mu_matrix.copy()
        mu2_sum = dataset.mu2_matrix.copy()
        counts = np.ones(n, dtype=np.int64)
        active = np.ones(n, dtype=bool)
        membership = np.arange(n)

        # Gaussian fits of every cluster mixture, maintained
        # incrementally: a merge touches only the absorbing cluster's
        # sums, so only that one row of (mix_mu, mix_var) is refreshed
        # per step instead of refitting all n clusters.
        mix_mu, mix_var = self._gaussian_parameters(mu_sum, mu2_sum, counts)
        if self.linkage == "ed":
            prox = self._initial_ed_proximity(dataset, n)
        else:
            prox = self._full_proximity(mix_mu, mix_var)
        np.fill_diagonal(prox, np.inf)

        merges: List[MergeStep] = []
        n_active = n
        while n_active > k:
            flat = int(np.argmin(prox))
            a, b = divmod(flat, n)
            if a > b:
                a, b = b, a
            height = float(prox[a, b])
            # Merge b into a.
            mu_sum[a] += mu_sum[b]
            mu2_sum[a] += mu2_sum[b]
            counts[a] += counts[b]
            active[b] = False
            membership[membership == b] = a
            merges.append(
                MergeStep(left=a, right=b, height=height, size=int(counts[a]))
            )
            # Retire b; refit the merged cluster's Gaussian (same
            # elementwise operations as `_gaussian_parameters`, applied
            # to the one changed row) and refresh its proximities.
            prox[b, :] = np.inf
            prox[:, b] = np.inf
            inv = 1.0 / float(counts[a])
            mix_mu[a] = mu_sum[a] * inv
            mix_var[a] = np.maximum(
                mu2_sum[a] * inv - mix_mu[a] ** 2, self._var_floor
            )
            row = self._row_against(mix_mu, mix_var, a)
            row[~active] = np.inf
            row[a] = np.inf
            prox[a, :] = row
            prox[:, a] = row
            n_active -= 1

        # Compact the surviving cluster ids to 0..k-1.
        survivors = {old: new for new, old in enumerate(np.flatnonzero(active))}
        labels = np.array([survivors[int(c)] for c in membership], dtype=np.int64)
        return labels, merges

    def _initial_ed_proximity(self, dataset: UncertainDataset, n: int) -> np.ndarray:
        """Initial singleton proximities for ``linkage="ed"``.

        Between singleton clusters the ``"ed"`` proximity *is* Lemma 3's
        ``ÊD``, so the starting structure is the dataset's pairwise
        ``ÊD`` matrix: a working copy of the engine-injected
        ``pairwise_ed_cache`` when the distance plane supplied one
        (copied because the agglomeration overwrites retired rows with
        ``inf``), or the same matrix computed in place.  Both paths run
        the identical kernel, so the plane never changes the dendrogram.
        """
        if self.pairwise_ed_cache is not None:
            matrix = np.asarray(self.pairwise_ed_cache, dtype=np.float64)
            if matrix.shape != (n, n):
                raise InvalidParameterError(
                    f"pairwise_ed_cache matrix must be ({n}, {n}), "
                    f"got {matrix.shape}"
                )
            return np.array(matrix)
        return pairwise_squared_expected_distances(dataset)

    def _gaussian_parameters(
        self, mu_sum: np.ndarray, mu2_sum: np.ndarray, counts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(means, variances) of each cluster mixture's Gaussian fit."""
        inv = 1.0 / counts.astype(np.float64)
        mix_mu = mu_sum * inv[:, None]
        mix_mu2 = mu2_sum * inv[:, None]
        mix_var = np.maximum(mix_mu2 - mix_mu**2, self._var_floor)
        return mix_mu, mix_var

    def _full_proximity(self, mu: np.ndarray, var: np.ndarray) -> np.ndarray:
        """All-pairs Jeffreys proximity via a blocked full-matrix broadcast.

        Evaluates the same elementwise formula as :meth:`_row_against`
        over ``(rows, n, m)`` expansions — row blocks sized by
        ``_PROXIMITY_BLOCK_ELEMENTS`` so the temporaries stay
        cache-resident — and reduces the contiguous trailing axis.
        Every entry is bit-identical to the per-row loop it replaces;
        the dendrogram regression in
        ``tests/test_density_hierarchical.py`` pins this.  (The ``"ed"``
        linkage takes :meth:`_initial_ed_proximity` instead — its
        singleton structure is the precomputable ``ÊD`` matrix.)
        """
        n, m = mu.shape
        rows = max(1, _PROXIMITY_BLOCK_ELEMENTS // max(1, n * m))
        prox = np.empty((n, n))
        for start in range(0, n, rows):
            stop = min(n, start + rows)
            diff_sq = (mu[None, :, :] - mu[start:stop, None, :]) ** 2
            term = (var[None, :, :] + diff_sq) / var[
                start:stop, None, :
            ] + (var[start:stop, None, :] + diff_sq) / var[None, :, :]
            prox[start:stop] = 0.5 * (term - 2.0).sum(axis=2)
        return prox

    def _row_against(
        self, mu: np.ndarray, var: np.ndarray, target: int
    ) -> np.ndarray:
        diff_sq = (mu - mu[target]) ** 2
        if self.linkage == "jeffreys":
            # Symmetric KL between diagonal Gaussians:
            # 0.5 sum_j [ (var_i + d^2)/var_t + (var_t + d^2)/var_i - 2 ].
            term = (var + diff_sq) / var[target] + (var[target] + diff_sq) / var
            return 0.5 * (term - 2.0).sum(axis=1)
        # "ed": ÊD between the mixture representatives (Lemma 3):
        # sigma^2_i + sigma^2_t + ||mu_i - mu_t||^2.
        return var.sum(axis=1) + var[target].sum() + diff_sq.sum(axis=1)
