"""Incremental cluster statistics — Theorem 3 and Corollary 1 (S6).

UCPC's efficiency claim rests on maintaining, per cluster and dimension,
the three sufficient statistics of Theorem 3:

* ``Psi_j  = sum_i (sigma^2)_j(o_i)``  — summed variances,
* ``Phi_j  = sum_i (mu2)_j(o_i)``      — summed raw second moments,
* ``Upsilon_j = (sum_i mu_j(o_i))^2``  — squared summed means,

so that ``J(C) = sum_j (Psi_j/|C| + Phi_j - Upsilon_j/|C|)`` and the
objective of ``C ∪ {o}`` / ``C \\ {o}`` follows in O(m) (Corollary 1).

Implementation note — the paper's Corollary 1 updates Upsilon via
``(sqrt(Upsilon) ± mu_j(o))^2``, which silently assumes the running mean
sum is nonnegative (true for the paper's nonnegative datasets, wrong in
general: ``sqrt`` loses the sign).  We therefore store the *signed* sum
``S_j = sum_i mu_j(o_i)`` and derive ``Upsilon_j = S_j^2``, which is
algebraically identical where the paper's form is valid and correct
everywhere else.  ``tests/test_cluster_stats.py`` covers both regimes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._typing import FloatArray
from repro.exceptions import EmptyClusterError, InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject


class ClusterStats:
    """Sufficient statistics of one cluster for the UCPC objective.

    Supports O(m) insertion, removal, and hypothetical ("what if")
    objective queries, per Corollary 1.
    """

    __slots__ = ("_psi", "_phi", "_mu_sum", "_count")

    def __init__(self, dim: int):
        if dim < 1:
            raise InvalidParameterError(f"dim must be >= 1, got {dim}")
        self._psi = np.zeros(dim)
        self._phi = np.zeros(dim)
        self._mu_sum = np.zeros(dim)
        self._count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_objects(objects: Sequence[UncertainObject]) -> "ClusterStats":
        """Build stats by inserting every object."""
        if len(objects) == 0:
            raise EmptyClusterError("from_objects needs at least one object")
        stats = ClusterStats(objects[0].dim)
        for obj in objects:
            stats.add(obj)
        return stats

    @staticmethod
    def from_dataset_indices(
        dataset: UncertainDataset, indices: Iterable[int]
    ) -> "ClusterStats":
        """Build stats from dataset rows (vectorized)."""
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            raise EmptyClusterError("from_dataset_indices needs at least one index")
        stats = ClusterStats(dataset.dim)
        stats._psi = dataset.sigma2_matrix[idx].sum(axis=0)
        stats._phi = dataset.mu2_matrix[idx].sum(axis=0)
        stats._mu_sum = dataset.mu_matrix[idx].sum(axis=0)
        stats._count = int(idx.size)
        return stats

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Cluster cardinality ``|C|``."""
        return self._count

    @property
    def dim(self) -> int:
        """Dimensionality m."""
        return self._psi.shape[0]

    @property
    def psi(self) -> FloatArray:
        """``Psi_j`` vector (summed variances)."""
        return self._psi.copy()

    @property
    def phi(self) -> FloatArray:
        """``Phi_j`` vector (summed raw second moments)."""
        return self._phi.copy()

    @property
    def mu_sum(self) -> FloatArray:
        """Signed mean-sum ``S_j``; ``Upsilon_j = S_j^2``."""
        return self._mu_sum.copy()

    @property
    def upsilon(self) -> FloatArray:
        """``Upsilon_j = (sum_i mu_j)^2`` of Theorem 3."""
        return self._mu_sum**2

    @property
    def centroid_mean(self) -> FloatArray:
        """Expected value of the cluster's U-centroid, ``S / |C|``."""
        if self._count == 0:
            raise EmptyClusterError("centroid of an empty cluster is undefined")
        return self._mu_sum / self._count

    # ------------------------------------------------------------------
    # Mutation (Corollary 1)
    # ------------------------------------------------------------------
    def add(self, obj: UncertainObject) -> None:
        """Insert an object: ``Psi += sigma^2(o)``, etc.; O(m)."""
        self._check_dim(obj)
        self._psi += obj.sigma2
        self._phi += obj.mu2
        self._mu_sum += obj.mu
        self._count += 1

    def remove(self, obj: UncertainObject) -> None:
        """Remove an object (caller guarantees membership); O(m)."""
        self._check_dim(obj)
        if self._count == 0:
            raise EmptyClusterError("cannot remove from an empty cluster")
        self._psi -= obj.sigma2
        self._phi -= obj.mu2
        self._mu_sum -= obj.mu
        self._count -= 1
        if self._count == 0:
            # Snap accumulated round-off to exact zero on emptying.
            self._psi[:] = 0.0
            self._phi[:] = 0.0
            self._mu_sum[:] = 0.0

    # ------------------------------------------------------------------
    # Objective queries (Theorem 3 / Corollary 1)
    # ------------------------------------------------------------------
    def objective(self) -> float:
        """``J(C)`` by Theorem 3's closed form; 0 for an empty cluster."""
        if self._count == 0:
            return 0.0
        inv = 1.0 / self._count
        return float(
            np.sum(self._psi * inv + self._phi - (self._mu_sum**2) * inv)
        )

    def objective_with(self, obj: UncertainObject) -> float:
        """``J(C ∪ {o})`` without mutating the stats (Eq. (15)); O(m)."""
        self._check_dim(obj)
        count = self._count + 1
        inv = 1.0 / count
        psi = self._psi + obj.sigma2
        phi = self._phi + obj.mu2
        mu_sum = self._mu_sum + obj.mu
        return float(np.sum(psi * inv + phi - (mu_sum**2) * inv))

    def objective_without(self, obj: UncertainObject) -> float:
        """``J(C \\ {o})`` without mutating the stats (Eq. (16)); O(m)."""
        self._check_dim(obj)
        if self._count == 0:
            raise EmptyClusterError("cannot remove from an empty cluster")
        count = self._count - 1
        if count == 0:
            return 0.0
        inv = 1.0 / count
        psi = self._psi - obj.sigma2
        phi = self._phi - obj.mu2
        mu_sum = self._mu_sum - obj.mu
        return float(np.sum(psi * inv + phi - (mu_sum**2) * inv))

    def relocation_delta(self, other: "ClusterStats", obj: UncertainObject) -> float:
        """Objective change of moving ``obj`` from this cluster to ``other``.

        Negative values are improvements.  This is the quantity UCPC's
        inner loop (Line 8 of Algorithm 1) minimizes over clusters.
        """
        before = self.objective() + other.objective()
        after = self.objective_without(obj) + other.objective_with(obj)
        return after - before

    def copy(self) -> "ClusterStats":
        """Deep copy of the statistics."""
        clone = ClusterStats(self.dim)
        clone._psi = self._psi.copy()
        clone._phi = self._phi.copy()
        clone._mu_sum = self._mu_sum.copy()
        clone._count = self._count
        return clone

    def _check_dim(self, obj: UncertainObject) -> None:
        if obj.dim != self.dim:
            raise InvalidParameterError(
                f"object dim {obj.dim} does not match cluster dim {self.dim}"
            )

    def __repr__(self) -> str:
        return f"ClusterStats(count={self._count}, J={self.objective():g})"


class ClusterStatsMatrix:
    """Vectorized Psi/Phi/S statistics for *all* k clusters at once.

    UCPC's inner loop evaluates ``J(C ∪ {o})`` for every cluster; doing
    that per-cluster in Python costs ``O(k)`` interpreter overhead per
    object.  This matrix form evaluates all k candidates in a handful of
    numpy operations, preserving the O(k·m) arithmetic of Corollary 1.
    """

    __slots__ = ("psi", "phi", "mu_sum", "counts")

    def __init__(self, n_clusters: int, dim: int):
        if n_clusters < 1:
            raise InvalidParameterError(f"n_clusters must be >= 1, got {n_clusters}")
        self.psi = np.zeros((n_clusters, dim))
        self.phi = np.zeros((n_clusters, dim))
        self.mu_sum = np.zeros((n_clusters, dim))
        self.counts = np.zeros(n_clusters, dtype=np.int64)

    @staticmethod
    def from_assignment(
        dataset: UncertainDataset, assignment: np.ndarray, n_clusters: int
    ) -> "ClusterStatsMatrix":
        """Aggregate dataset moments per assigned cluster."""
        stats = ClusterStatsMatrix(n_clusters, dataset.dim)
        np.add.at(stats.psi, assignment, dataset.sigma2_matrix)
        np.add.at(stats.phi, assignment, dataset.mu2_matrix)
        np.add.at(stats.mu_sum, assignment, dataset.mu_matrix)
        np.add.at(stats.counts, assignment, 1)
        return stats

    @property
    def n_clusters(self) -> int:
        """Number of tracked clusters."""
        return self.counts.shape[0]

    def objectives(self) -> FloatArray:
        """``J(C_c)`` for every cluster c (0 for empty clusters)."""
        safe = np.maximum(self.counts, 1).astype(np.float64)
        inv = 1.0 / safe
        per_cluster = (
            self.psi.sum(axis=1) * inv
            + self.phi.sum(axis=1)
            - np.einsum("cj,cj->c", self.mu_sum, self.mu_sum) * inv
        )
        return np.where(self.counts > 0, per_cluster, 0.0)

    def total_objective(self) -> float:
        """``sum_C J(C)`` — the quantity UCPC minimizes."""
        return float(self.objectives().sum())

    def objectives_with(
        self, sigma2: FloatArray, mu2: FloatArray, mu: FloatArray
    ) -> FloatArray:
        """``J(C_c ∪ {o})`` for every cluster c in one shot (Eq. (15))."""
        counts = (self.counts + 1).astype(np.float64)
        inv = 1.0 / counts
        psi = self.psi.sum(axis=1) + sigma2.sum()
        phi = self.phi.sum(axis=1) + mu2.sum()
        mu_sum = self.mu_sum + mu
        ups = np.einsum("cj,cj->c", mu_sum, mu_sum)
        return psi * inv + phi - ups * inv

    def objective_without(
        self, cluster: int, sigma2: FloatArray, mu2: FloatArray, mu: FloatArray
    ) -> float:
        """``J(C_c \\ {o})`` for the object's own cluster (Eq. (16))."""
        count = int(self.counts[cluster]) - 1
        if count <= 0:
            return 0.0
        inv = 1.0 / count
        psi = float(self.psi[cluster].sum() - sigma2.sum())
        phi = float(self.phi[cluster].sum() - mu2.sum())
        mu_sum = self.mu_sum[cluster] - mu
        return psi * inv + phi - float(mu_sum @ mu_sum) * inv

    def move(
        self,
        source: int,
        target: int,
        sigma2: FloatArray,
        mu2: FloatArray,
        mu: FloatArray,
    ) -> None:
        """Relocate an object's contribution between clusters; O(m)."""
        self.psi[source] -= sigma2
        self.phi[source] -= mu2
        self.mu_sum[source] -= mu
        self.counts[source] -= 1
        self.psi[target] += sigma2
        self.phi[target] += mu2
        self.mu_sum[target] += mu
        self.counts[target] += 1
