"""Shared sample-tensor handling for the sample-based algorithms.

Basic UK-means and the pruning variants all start their off-line phase
from the same ``(n, S, m)`` realization tensor.  This mixin centralizes
how that tensor is obtained: batch-drawn through
:meth:`UncertainDataset.sample_tensor`, or injected pre-drawn via the
``sample_cache`` attribute (the multi-restart engine shares one tensor
across restarts this way).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset


class SampleCacheMixin:
    """Adds ``sample_cache`` support to a sample-based clusterer.

    The host class must define ``n_samples``.  ``sample_cache`` is
    ``None`` by default (draw fresh samples per fit); setting it to an
    ``(n, S, m)`` tensor makes every subsequent fit reuse those exact
    samples — the multi-restart engine uses this to amortize the
    off-line phase across restarts.
    """

    #: Optional pre-drawn ``(n, S, m)`` sample tensor shared across
    #: runs; ``None`` means draw fresh samples per fit.
    sample_cache: Optional[np.ndarray] = None

    #: True when the Monte-Carlo draw is the algorithm's *only* source
    #: of randomness (FDBSCAN, FOPTICS): given the tensor, the fit is
    #: deterministic.  Multi-run *measurement* harnesses (the
    #: experiment runners via :func:`repro.engine.fit_runs`) use this to
    #: keep per-run draws independent — sharing one tensor would
    #: collapse every run to one realization — while restart-style
    #: best-of runs may still share explicitly.
    sample_randomness_only: bool = False

    def _draw_samples(
        self, dataset: UncertainDataset, rng: np.random.Generator
    ) -> np.ndarray:
        """The ``(n, S, m)`` sample tensor: cached or batch-drawn."""
        if self.sample_cache is not None:
            cache = np.asarray(self.sample_cache)
            expected = (len(dataset), self.n_samples, dataset.dim)
            if cache.shape != expected:
                raise InvalidParameterError(
                    f"sample_cache shape {cache.shape} does not match the "
                    f"expected {expected}"
                )
            return cache
        return dataset.sample_tensor(self.n_samples, rng)
