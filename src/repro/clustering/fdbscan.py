"""FDBSCAN — fuzzy density-based clustering of uncertain data [12] (S13).

Kriegel & Pfeifle's FDBSCAN generalizes DBSCAN to uncertain objects by
treating the distance between two objects as a random variable:

* the **reachability probability** ``p_ij = Pr(||X_i - X_j|| <= eps)``
  is estimated by Monte Carlo over matched sample pairs drawn from the
  two objects' pdfs;
* an object is a **core object** when its *expected* number of
  eps-neighbors (``sum_j p_ij``, counting itself) reaches ``min_pts`` —
  the fuzzy analogue of DBSCAN's neighborhood cardinality test;
* cluster expansion follows edges whose reachability probability is at
  least ``reach_prob`` (0.5 by default), the matching fuzzy analogue of
  direct density-reachability.

Objects reachable from no core object are labeled noise (-1).  The
pairwise probability estimation is Theta(n^2 * S) — FDBSCAN belongs to
the paper's "slower" group in Figure 4 for exactly this reason.  The
off-line phase draws the whole ``(n, S, m)`` realization tensor through
:meth:`UncertainDataset.sample_tensor` (one vectorized draw per
distribution family) and the probability matrix is computed in
memory-bounded column blocks (see :mod:`repro.clustering._density`).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro._typing import SeedLike
from repro.clustering._density import (
    eps_candidate_pairs,
    gathered_pair_probabilities,
    pairwise_within_eps_probabilities,
    sample_radii,
    scattered_row_sums,
    symmetric_adjacency,
)
from repro.clustering._sampling import SampleCacheMixin
from repro.clustering.base import ClusteringResult, UncertainClusterer
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch
from repro.utils.validation import check_positive, check_probability


def pairwise_reach_probabilities(
    samples: np.ndarray, eps: float, block: Optional[int] = None
) -> np.ndarray:
    """``(n, n)`` matrix of ``Pr(||X_i - X_j|| <= eps)`` estimates.

    ``samples`` has shape ``(n, S, m)``; the estimate for a pair uses the
    ``S`` matched sample pairs (an unbiased MC estimator of the double
    integral).  The diagonal is fixed at 1.  ``block`` bounds the peak
    memory of the blocked kernel (auto-derived when ``None``).
    """
    return pairwise_within_eps_probabilities(samples, eps, block=block)


def auto_eps(dataset: UncertainDataset, quantile: float = 0.1) -> float:
    """Heuristic ``eps``: a low quantile of inter-object center distances.

    The paper does not publish its FDBSCAN parameterization; a quantile
    of the pairwise expected-value distances adapts eps to each dataset's
    scale, which is the standard DBSCAN calibration practice.
    """
    check_probability(quantile, "quantile")
    mu = dataset.mu_matrix
    n = mu.shape[0]
    if n < 2:
        return 1.0
    # Subsample pairs on large datasets to keep calibration cheap.
    max_rows = 512
    if n > max_rows:
        step = n // max_rows
        mu = mu[::step]
        n = mu.shape[0]
    sq = np.einsum("ij,ij->i", mu, mu)
    dist_sq = sq[:, None] - 2.0 * (mu @ mu.T) + sq[None, :]
    np.maximum(dist_sq, 0.0, out=dist_sq)
    upper = dist_sq[np.triu_indices(n, k=1)]
    return float(np.sqrt(np.quantile(upper, quantile)))


class FDBSCAN(SampleCacheMixin, UncertainClusterer):
    """Fuzzy DBSCAN over uncertain objects [12].

    Parameters
    ----------
    eps:
        Neighborhood radius; ``None`` selects it per dataset via
        :func:`auto_eps`.
    min_pts:
        Expected-neighbor-count threshold for core objects.
    reach_prob:
        Minimum reachability probability for an expansion edge.
    n_samples:
        Monte-Carlo samples per object for probability estimation.
    eps_quantile:
        Quantile used by the automatic eps calibration.
    prefilter:
        When true, a radius prefilter on the objects' sample means
        bounds the candidate-pair set before any probability kernel
        runs: a pair whose sample-mean distance exceeds ``eps + r_i +
        r_j`` (``r`` = largest sample deviation from the sample mean)
        has *exactly zero* within-eps probability by the triangle
        inequality, so labels are preserved — without ever
        materializing the ``(n, n)`` probability matrix.  This is the
        scale path for large ``n``; see the README's "Scaling beyond
        the paper grid".

    Notes
    -----
    As a :class:`SampleCacheMixin` subclass, the off-line sample tensor
    can be pinned via ``sample_cache`` — the multi-restart engine and
    the experiment runners use this to draw it exactly once.
    """

    name = "FDB"
    has_objective = False
    sample_randomness_only = True

    def __init__(
        self,
        eps: Optional[float] = None,
        min_pts: int = 4,
        reach_prob: float = 0.5,
        n_samples: int = 32,
        eps_quantile: float = 0.1,
        prefilter: bool = False,
    ):
        if eps is not None:
            check_positive(eps, "eps")
        if min_pts < 1:
            raise InvalidParameterError(f"min_pts must be >= 1, got {min_pts}")
        check_probability(reach_prob, "reach_prob")
        if n_samples < 1:
            raise InvalidParameterError(f"n_samples must be >= 1, got {n_samples}")
        check_probability(eps_quantile, "eps_quantile")
        self.eps = eps
        self.min_pts = int(min_pts)
        self.reach_prob = float(reach_prob)
        self.n_samples = int(n_samples)
        self.eps_quantile = float(eps_quantile)
        self.prefilter = bool(prefilter)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset``; noise objects get label -1."""
        rng = ensure_rng(seed)
        eps = self.eps if self.eps is not None else auto_eps(
            dataset, self.eps_quantile
        )

        # Off-line: one batched draw of the whole (n, S, m) tensor
        # (or the engine-injected shared cache).
        samples = self._draw_samples(dataset, rng)

        watch = Stopwatch()
        extras = {"eps": eps}
        with watch.running():
            if self.prefilter:
                is_core, labels = self._fit_prefiltered(samples, eps, extras)
            else:
                probs = pairwise_reach_probabilities(samples, eps)
                expected_neighbors = probs.sum(axis=1)  # self included (p_ii = 1)
                is_core = expected_neighbors >= self.min_pts
                reachable = probs >= self.reach_prob
                labels = self._expand(is_core, reachable)
        extras["n_core"] = int(is_core.sum())
        extras["n_noise"] = int(np.sum(labels < 0))
        return ClusteringResult(
            labels=labels,
            runtime_seconds=watch.elapsed_seconds,
            extras=extras,
        )

    def _fit_prefiltered(
        self, samples: np.ndarray, eps: float, extras: dict
    ) -> tuple[np.ndarray, np.ndarray]:
        """Radius-prefiltered path: no ``(n, n)`` matrix, same labels.

        Pruned pairs have exactly-zero within-eps probability (see
        :func:`repro.clustering._density.eps_candidate_pairs`), so both
        the expected neighbor counts and the reachability edge set are
        the dense path's — up to ulp-level kernel noise at threshold
        boundaries, the accepted hazard class of the dense GEMM kernel,
        pinned by the capped-vs-dense label regression.
        """
        n = samples.shape[0]
        radii = sample_radii(samples)
        ii, jj = eps_candidate_pairs(samples.mean(axis=1), radii, eps)
        pair_probs = gathered_pair_probabilities(samples, eps, ii, jj)
        # Row sums through the dense pairwise-reduction tree (absent
        # pairs are exact zeros, self contributes p_ii = 1): bitwise
        # the dense ``probs.sum(axis=1)`` given equal pair values, so
        # the min_pts core threshold can never flip on summation order.
        expected_neighbors = scattered_row_sums(n, ii, jj, pair_probs)
        is_core = expected_neighbors >= self.min_pts
        edge = pair_probs >= self.reach_prob
        offsets, neighbors = symmetric_adjacency(n, ii[edge], jj[edge])
        labels = self._expand_sparse(is_core, offsets, neighbors)
        total_pairs = n * (n - 1) // 2
        extras["n_candidate_pairs"] = int(ii.size)
        extras["pair_prune_rate"] = (
            1.0 - ii.size / total_pairs if total_pairs else 0.0
        )
        return is_core, labels

    @staticmethod
    def _expand(is_core: np.ndarray, reachable: np.ndarray) -> np.ndarray:
        """DBSCAN-style expansion over the fuzzy reachability graph."""
        n = is_core.shape[0]
        labels = np.full(n, -1, dtype=np.int64)
        cluster_id = 0
        for start in range(n):
            if labels[start] != -1 or not is_core[start]:
                continue
            labels[start] = cluster_id
            queue = deque([start])
            while queue:
                node = queue.popleft()
                if not is_core[node]:
                    continue
                for neighbor in np.flatnonzero(reachable[node]):
                    if labels[neighbor] == -1:
                        labels[neighbor] = cluster_id
                        if is_core[neighbor]:
                            queue.append(int(neighbor))
            cluster_id += 1
        return labels

    @staticmethod
    def _expand_sparse(
        is_core: np.ndarray, offsets: np.ndarray, neighbors: np.ndarray
    ) -> np.ndarray:
        """The same expansion over a CSR adjacency (ascending rows).

        Neighbor rows are visited in ascending index order — identical
        to the dense ``np.flatnonzero`` scan (the dense row also
        "visits" the already-labeled self, a no-op), so both paths grow
        clusters in the same order and assign the same ids.
        """
        n = is_core.shape[0]
        labels = np.full(n, -1, dtype=np.int64)
        cluster_id = 0
        for start in range(n):
            if labels[start] != -1 or not is_core[start]:
                continue
            labels[start] = cluster_id
            queue = deque([start])
            while queue:
                node = queue.popleft()
                if not is_core[node]:
                    continue
                for neighbor in neighbors[offsets[node]:offsets[node + 1]]:
                    if labels[neighbor] == -1:
                        labels[neighbor] = cluster_id
                        if is_core[neighbor]:
                            queue.append(int(neighbor))
            cluster_id += 1
        return labels
