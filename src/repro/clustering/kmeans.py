"""Deterministic K-means (Lloyd) baseline (S16).

The Case-1 evaluation protocol clusters *perturbed deterministic* data;
those datasets flow through the library as zero-variance uncertain
objects, for which UK-means reduces exactly to classic K-means.  This
module provides the explicit point-matrix entry point for users who have
plain vectors and no uncertainty model at all.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import ClusteringResult, UncertainClusterer
from repro.clustering.ukmeans import UKMeans
from repro.objects.dataset import UncertainDataset


class KMeans(UncertainClusterer):
    """Lloyd's K-means on deterministic points.

    A thin adapter: wraps the rows as point-mass uncertain objects and
    delegates to :class:`~repro.clustering.ukmeans.UKMeans`, with which
    it coincides exactly at zero variance (Eq. (8) with sigma^2 = 0).

    Parameters
    ----------
    n_clusters, max_iter, init:
        As in :class:`UKMeans`.
    """

    name = "KM"

    def __init__(self, n_clusters: int, max_iter: int = 100, init: str = "random"):
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.init = init
        self._delegate = UKMeans(n_clusters, max_iter=max_iter, init=init)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster an (already wrapped) dataset."""
        return self._delegate.fit(dataset, seed)

    def fit_points(
        self,
        points: np.ndarray,
        labels: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> ClusteringResult:
        """Cluster a raw ``(n, m)`` point matrix."""
        dataset = UncertainDataset.from_points(points, labels)
        return self.fit(dataset, seed)
