"""UK-means, the fast moment-based variant of Lee et al. [14] (S8).

Eq. (8) of the paper decomposes the expected distance as

    ED(o, y) = ED(o, mu(o)) + ||y - mu(o)||^2
             = sigma^2(o)   + ||y - mu(o)||^2,

so after the off-line moment phase the on-line loop is exactly Lloyd's
K-means over the expected values — the per-object variance offsets the
objective but never changes an assignment.  This is the algorithm the
paper refers to as plain "UK-means" with O(I·k·n·m) on-line complexity.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.clustering._repair import repair_empty_clusters
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import (
    kmeanspp_seed_indices,
    random_seed_indices,
)
from repro.exceptions import InvalidParameterError, warn_convergence
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


def _assign_to_centers(mu: np.ndarray, centers: np.ndarray) -> IntArray:
    """Nearest center per row of ``mu`` under squared Euclidean distance."""
    mu_sq = np.einsum("ij,ij->i", mu, mu)
    center_sq = np.einsum("cj,cj->c", centers, centers)
    dist = mu_sq[:, None] - 2.0 * (mu @ centers.T) + center_sq[None, :]
    return np.argmin(dist, axis=1).astype(np.int64)


def _repair_empty_clusters(
    mu: np.ndarray,
    centers: np.ndarray,
    assignment: IntArray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, IntArray]:
    """Reseed any empty cluster with the object farthest from its center.

    Bounds-interaction invariant (audited for the Elkan/Hamerly scale
    path): reseeding ``centers[cluster]`` teleports a centroid, which
    invalidates any distance bound anchored on its previous position
    beyond drift accounting.  Fast UK-means keeps no bounds, so the
    in-place reseed here is safe; :class:`~repro.clustering.
    ukmeans_bounded.BoundedUKMeans` deliberately mirrors
    :class:`BasicUKMeans` instead — repair moves the victim *object*
    only (no centroid reseed), and the victim's upper bound is
    recomputed exactly (`_repair_bounds`), while later centroid motion
    is covered by actual-displacement drift decay.
    """
    k = centers.shape[0]
    moves = repair_empty_clusters(assignment, mu, centers, k)
    for cluster, victim in moves:
        centers[cluster] = mu[victim]
    return centers, assignment


def ukmeans_objective(dataset: UncertainDataset, assignment: IntArray) -> float:
    """``sum_C J_UK(C)`` for a full assignment (Eq. (9) summed)."""
    k = int(assignment.max()) + 1
    mu = dataset.mu_matrix
    total = float(dataset.total_variances.sum())
    for c in range(k):
        members = assignment == c
        if not members.any():
            continue
        center = mu[members].mean(axis=0)
        diffs = mu[members] - center
        total += float(np.einsum("ij,ij->i", diffs, diffs).sum())
    return total


class UKMeans(UncertainClusterer):
    """Fast UK-means [14]: Lloyd iteration on expected values.

    Parameters
    ----------
    n_clusters:
        Number of output clusters ``k``.
    max_iter:
        Iteration cap ``I``.
    init:
        ``"random"`` — random objects as initial centroids;
        ``"kmeans++"`` — D²-weighted seeding on expected values.
    """

    name = "UKM"

    def __init__(self, n_clusters: int, max_iter: int = 100, init: str = "random"):
        if init not in ("random", "kmeans++"):
            raise InvalidParameterError(
                f"init must be 'random' or 'kmeans++', got {init!r}"
            )
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.init = init

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset``; see class docstring."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)
        mu = dataset.mu_matrix
        if self.init == "kmeans++":
            seeds = kmeanspp_seed_indices(dataset, k, rng)
        else:
            seeds = random_seed_indices(n, k, rng)
        centers = mu[seeds].copy()

        watch = Stopwatch()
        history = []
        converged = False
        iterations = 0
        with watch.running():
            assignment = _assign_to_centers(mu, centers)
            centers, assignment = _repair_empty_clusters(mu, centers, assignment, rng)
            for _ in range(self.max_iter):
                iterations += 1
                for c in range(k):
                    members = assignment == c
                    if members.any():
                        centers[c] = mu[members].mean(axis=0)
                new_assignment = _assign_to_centers(mu, centers)
                centers, new_assignment = _repair_empty_clusters(
                    mu, centers, new_assignment, rng
                )
                history.append(ukmeans_objective(dataset, new_assignment))
                if np.array_equal(new_assignment, assignment):
                    assignment = new_assignment
                    converged = True
                    break
                assignment = new_assignment
        if not converged:
            warn_convergence(
                f"UK-means hit max_iter={self.max_iter} before convergence"
            )
        return ClusteringResult(
            labels=assignment,
            objective=history[-1],
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            objective_history=history,
        )
