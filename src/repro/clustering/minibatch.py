"""Mini-batch UK-means: streaming Lloyd updates on the moment matrices.

The lossy counterpart of the bounded (lossless) scale path: instead of
a full assignment pass per iteration, each iteration draws a random
mini-batch of objects, assigns only those on the expected-value plane
(the fast UK-means decomposition makes per-object variances an additive
constant, so batch assignment needs the cached ``mu_matrix`` only), and
moves each touched centroid toward the batch members' mean with a
per-centroid learning rate ``eta_c = b_c / nu_c`` that decays with the
total count ``nu_c`` of objects the centroid has absorbed — the
Sculley-style streaming update, convex so centers stay in the data's
hull.

Because a mini-batch trajectory is noisier than full Lloyd, the model
*over-clusters* during streaming (``k_over = over_cluster * k``
centroids) and then runs a prune→merge postpass: centroids that never
absorbed an object are dropped, and the closest centroid pairs are
merged (count-weighted means) until exactly ``k`` remain.  A final full
assignment + repair pass produces the labeling and the standard
UK-means objective.

This variant is **not** exact-match guarded: it trades assignment
fidelity for per-iteration cost ``O(b * k_over * m)`` independent of
``n``.  Its accuracy deltas on the paper grid are documented in the
README's scaling section and sanity-pinned (objective within a small
factor of full UK-means on separated data) in
``tests/test_scale_path.py``.
"""

from __future__ import annotations

import numpy as np

from repro._typing import SeedLike
from repro.clustering._repair import repair_empty_clusters
from repro.clustering.base import (
    ClusteringResult,
    UncertainClusterer,
    validate_n_clusters,
)
from repro.clustering.initialization import random_seed_indices
from repro.clustering.ukmeans import _assign_to_centers, ukmeans_objective
from repro.exceptions import InvalidParameterError, warn_convergence
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng
from repro.utils.timer import Stopwatch


class MiniBatchUKMeans(UncertainClusterer):
    """Mini-batch UK-means with an over-cluster→prune→merge postpass.

    Parameters
    ----------
    n_clusters:
        Number of output clusters ``k``.
    batch_size:
        Objects sampled per streaming iteration (clipped to ``n``).
    max_iter:
        Streaming iteration cap.
    over_cluster:
        Streaming centroid multiplier: ``k_over = min(n, over_cluster *
        k)`` centroids are maintained during streaming and merged down
        to ``k`` in the postpass.  ``1`` disables over-clustering.
    tol:
        Convergence threshold on the summed squared centroid movement
        of one streaming iteration.
    """

    name = "MB-UKM"

    def __init__(
        self,
        n_clusters: int,
        batch_size: int = 1024,
        max_iter: int = 100,
        over_cluster: int = 3,
        tol: float = 1e-7,
    ):
        if batch_size < 1:
            raise InvalidParameterError(f"batch_size must be >= 1, got {batch_size}")
        if max_iter < 1:
            raise InvalidParameterError(f"max_iter must be >= 1, got {max_iter}")
        if over_cluster < 1:
            raise InvalidParameterError(
                f"over_cluster must be >= 1, got {over_cluster}"
            )
        if tol < 0:
            raise InvalidParameterError(f"tol must be >= 0, got {tol}")
        self.n_clusters = int(n_clusters)
        self.batch_size = int(batch_size)
        self.max_iter = int(max_iter)
        self.over_cluster = int(over_cluster)
        self.tol = float(tol)

    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset``; see class docstring."""
        n = len(dataset)
        k = validate_n_clusters(self.n_clusters, n)
        rng = ensure_rng(seed)
        mu = dataset.mu_matrix
        k_over = min(n, self.over_cluster * k)
        batch = min(self.batch_size, n)

        seeds = random_seed_indices(n, k_over, rng)
        centers = mu[seeds].copy()
        counts = np.zeros(k_over, dtype=np.int64)

        watch = Stopwatch()
        iterations = 0
        converged = False
        with watch.running():
            for _ in range(self.max_iter):
                iterations += 1
                rows = rng.choice(n, size=batch, replace=False)
                assign = _assign_to_centers(mu[rows], centers)
                old_centers = centers.copy()
                for c in np.unique(assign):
                    members = rows[assign == c]
                    counts[c] += members.size
                    eta = members.size / counts[c]
                    centers[c] = (1.0 - eta) * centers[c] + eta * mu[
                        members
                    ].mean(axis=0)
                shift = float(((centers - old_centers) ** 2).sum())
                if shift <= self.tol:
                    converged = True
                    break
            centers, counts, n_merges = self._prune_and_merge(
                centers, counts, k
            )
            labels = _assign_to_centers(mu, centers)
            repair_empty_clusters(labels, mu, centers, k)
        if not converged:
            warn_convergence(
                f"{self.name} hit max_iter={self.max_iter} before convergence"
            )
        return ClusteringResult(
            labels=labels,
            objective=ukmeans_objective(dataset, labels),
            n_iterations=iterations,
            converged=converged,
            runtime_seconds=watch.elapsed_seconds,
            extras={
                "batch_size": batch,
                "k_over": k_over,
                "n_merges": n_merges,
                "objects_seen": int(counts.sum()),
            },
        )

    # ------------------------------------------------------------------
    # Postpass
    # ------------------------------------------------------------------
    @staticmethod
    def _prune_and_merge(
        centers: np.ndarray, counts: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Drop never-used centroids, merge closest pairs down to ``k``.

        Returns ``(centers, counts, n_merges)`` with exactly ``k``
        centroids.  Pruning keeps the ``k`` heaviest centroids when
        dropping the empties would undershoot; merging combines the
        globally closest pair into its count-weighted mean until ``k``
        remain.
        """
        order = np.argsort(-counts, kind="stable")
        used = order[counts[order] > 0]
        if used.size < k:
            # Not enough centroids ever absorbed an object (tiny data /
            # huge over_cluster): pad with the heaviest empties.
            used = order[:k]
        centers = centers[used].copy()
        counts = counts[used].copy()
        n_merges = 0
        while centers.shape[0] > k:
            diff = centers[:, None, :] - centers[None, :, :]
            dist = np.einsum("abm,abm->ab", diff, diff)
            np.fill_diagonal(dist, np.inf)
            a, b = np.unravel_index(int(np.argmin(dist)), dist.shape)
            a, b = (int(a), int(b)) if a < b else (int(b), int(a))
            weight = counts[a] + counts[b]
            if weight > 0:
                centers[a] = (
                    counts[a] * centers[a] + counts[b] * centers[b]
                ) / weight
            else:
                centers[a] = 0.5 * (centers[a] + centers[b])
            counts[a] = weight
            keep = np.ones(centers.shape[0], dtype=bool)
            keep[b] = False
            centers = centers[keep]
            counts = counts[keep]
            n_merges += 1
        return centers, counts, n_merges
