"""Initial partitions and seed selection for partitional algorithms.

Algorithm 1 of the paper starts from "an initial partition of D (e.g., a
random partition)"; the K-means-family algorithms start from initial
centroids.  This module provides both, plus a k-means++-style seeding on
expected values which materially stabilizes all centroid-based methods.
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import ensure_rng


def random_partition(
    n_objects: int, n_clusters: int, seed: SeedLike = None
) -> IntArray:
    """Uniformly random assignment with every cluster guaranteed non-empty.

    The first ``n_clusters`` slots of a random permutation are pinned to
    distinct clusters; the rest are assigned uniformly.
    """
    if n_clusters < 1 or n_clusters > n_objects:
        raise InvalidParameterError(
            f"need 1 <= n_clusters <= n_objects, got k={n_clusters}, n={n_objects}"
        )
    rng = ensure_rng(seed)
    labels = rng.integers(0, n_clusters, size=n_objects)
    pinned = rng.permutation(n_objects)[:n_clusters]
    labels[pinned] = np.arange(n_clusters)
    return labels.astype(np.int64)


def random_seed_indices(
    n_objects: int, n_clusters: int, seed: SeedLike = None
) -> IntArray:
    """``n_clusters`` distinct object indices chosen uniformly."""
    if n_clusters < 1 or n_clusters > n_objects:
        raise InvalidParameterError(
            f"need 1 <= n_clusters <= n_objects, got k={n_clusters}, n={n_objects}"
        )
    rng = ensure_rng(seed)
    return rng.choice(n_objects, size=n_clusters, replace=False).astype(np.int64)


def kmeanspp_seed_indices(
    dataset: UncertainDataset, n_clusters: int, seed: SeedLike = None
) -> IntArray:
    """k-means++ seeding over the objects' expected values.

    The classic D² weighting of Arthur & Vassilvitskii applied to
    ``mu(o)``; returns object indices usable as initial centroids or
    medoids.
    """
    n = len(dataset)
    if n_clusters < 1 or n_clusters > n:
        raise InvalidParameterError(
            f"need 1 <= n_clusters <= n_objects, got k={n_clusters}, n={n}"
        )
    rng = ensure_rng(seed)
    mu = dataset.mu_matrix
    chosen = np.empty(n_clusters, dtype=np.int64)
    chosen[0] = rng.integers(0, n)
    diff = mu - mu[chosen[0]]
    best_sq = np.einsum("ij,ij->i", diff, diff)
    for idx in range(1, n_clusters):
        total = float(best_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with a chosen seed: fall back
            # to uniform choice among unchosen indices.
            remaining = np.setdiff1d(np.arange(n), chosen[:idx])
            chosen[idx] = rng.choice(remaining)
        else:
            probs = best_sq / total
            chosen[idx] = rng.choice(n, p=probs)
        diff = mu - mu[chosen[idx]]
        np.minimum(best_sq, np.einsum("ij,ij->i", diff, diff), out=best_sq)
    return chosen


def partition_from_seeds(
    dataset: UncertainDataset, seed_indices: np.ndarray
) -> IntArray:
    """Assign every object to its nearest seed (by expected value)."""
    mu = dataset.mu_matrix
    seeds = mu[np.asarray(seed_indices, dtype=np.int64)]
    seed_sq = np.einsum("cj,cj->c", seeds, seeds)
    mu_sq = np.einsum("ij,ij->i", mu, mu)
    dist = mu_sq[:, None] - 2.0 * (mu @ seeds.T) + seed_sq[None, :]
    return np.argmin(dist, axis=1).astype(np.int64)
