"""Shared clustering interfaces and result types.

Every algorithm in :mod:`repro.clustering` — partitional, density-based
and hierarchical alike — consumes an :class:`~repro.objects.dataset.
UncertainDataset` and produces a :class:`ClusteringResult`, so the
evaluation protocol and experiment harness treat all of them uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro._typing import IntArray, SeedLike
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset


@dataclass
class ClusteringResult:
    """Outcome of one clustering run.

    Attributes
    ----------
    labels:
        Cluster index per object, shape ``(n,)``.  Density-based methods
        may emit ``-1`` for noise objects.
    objective:
        Final value of the algorithm's own objective function (NaN for
        algorithms without one, e.g. FDBSCAN).
    n_iterations:
        Outer iterations executed (``I`` in the paper's complexity
        analyses); 1 for single-pass methods.
    converged:
        Whether the stopping criterion was reached before the iteration
        cap.
    runtime_seconds:
        Wall-clock "on-line" clustering time — excludes any off-line
        moment/sample precomputation, matching the paper's timing
        methodology (Section 5.2.2).
    objective_history:
        Objective value after each iteration (empty when not tracked).
    extras:
        Algorithm-specific diagnostics (e.g. pruning counters).
    """

    labels: IntArray
    objective: float = float("nan")
    n_iterations: int = 1
    converged: bool = True
    runtime_seconds: float = 0.0
    objective_history: List[float] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)

    @property
    def n_objects(self) -> int:
        """Number of clustered objects."""
        return self.labels.shape[0]

    @property
    def n_clusters(self) -> int:
        """Number of non-noise clusters present in the labeling."""
        real = self.labels[self.labels >= 0]
        if real.size == 0:
            return 0
        return int(np.unique(real).size)

    @property
    def n_noise(self) -> int:
        """Number of objects labeled as noise (-1)."""
        return int(np.sum(self.labels < 0))

    def clusters(self) -> List[List[int]]:
        """Object indices grouped per cluster (noise excluded)."""
        groups: Dict[int, List[int]] = {}
        for idx, lab in enumerate(self.labels):
            if lab >= 0:
                groups.setdefault(int(lab), []).append(idx)
        return [groups[key] for key in sorted(groups)]

    def relabeled(self) -> "ClusteringResult":
        """Copy with cluster ids compacted to ``0..k-1`` (noise kept as -1)."""
        labels = self.labels.copy()
        real = sorted(set(int(v) for v in labels if v >= 0))
        mapping = {old: new for new, old in enumerate(real)}
        for idx, lab in enumerate(labels):
            if lab >= 0:
                labels[idx] = mapping[int(lab)]
        return ClusteringResult(
            labels=labels,
            objective=self.objective,
            n_iterations=self.n_iterations,
            converged=self.converged,
            runtime_seconds=self.runtime_seconds,
            objective_history=list(self.objective_history),
            extras=dict(self.extras),
        )


class UncertainClusterer(abc.ABC):
    """Base class for every clustering algorithm in the library.

    Subclasses implement :meth:`fit`; the constructor of each subclass
    carries the algorithm's hyperparameters so that one configured
    instance can be reused across datasets and runs (the experiment
    harness relies on this).
    """

    #: Human-readable algorithm name used in reports (paper's abbreviations).
    name: str = "clusterer"

    #: Whether :meth:`fit` produces a comparable ``objective`` value.
    #: Algorithms without one (density-based, hierarchical) cannot be
    #: ranked by a best-of-``n_init`` loop, so callers should skip
    #: multi-restart execution for them.
    has_objective: bool = True

    #: Whether :meth:`fit` consumes the dataset's pairwise ``ÊD`` matrix
    #: (the off-line phase of UK-medoids and, later, UAHC's proximity
    #: seed).  Declaring algorithms expose a ``pairwise_ed_cache``
    #: attribute; the multi-restart engine computes the matrix **once**
    #: per run-set (``UncertainDataset.pairwise_ed``) and injects it
    #: there, so restarts never repeat the O(n^2 m) work.
    wants_pairwise_ed: bool = False

    #: Backend family the ``auto`` execution backend dispatches this
    #: algorithm to when parallel workers are available: ``"threads"``
    #: for fits dominated by GIL-releasing moment/tensor kernels (the
    #: default), ``"processes"`` for interpreter-bound relocation/merge
    #: loops (UCPC, UK-medoids, UAHC).
    preferred_backend: str = "threads"

    @abc.abstractmethod
    def fit(self, dataset: UncertainDataset, seed: SeedLike = None) -> ClusteringResult:
        """Cluster ``dataset`` and return a :class:`ClusteringResult`."""

    def fit_best(
        self,
        dataset: UncertainDataset,
        seed: SeedLike = None,
        n_init: int = 10,
        n_jobs: int = 1,
        backend=None,
        early_stopping=None,
        batch_size: int = 1,
    ) -> ClusteringResult:
        """Best-of-``n_init`` restarts via the multi-restart engine.

        Convenience wrapper around
        :class:`repro.engine.MultiRestartRunner`: restarts share the
        dataset's moment cache, one precomputed sample tensor (for
        sample-based algorithms) and one pairwise ``ÊD`` matrix (for
        ``wants_pairwise_ed`` algorithms), execute on the chosen backend
        (``"serial"``, ``"threads"``, ``"processes"`` or ``"auto"``;
        ``None`` maps ``n_jobs`` to the historical serial/process
        choice) in in-worker chunks of ``batch_size`` restarts,
        optionally stop early once ``early_stopping`` restarts bring no
        improvement, and the lowest-objective result wins.
        """
        from repro.engine import MultiRestartRunner

        runner = MultiRestartRunner(
            self,
            n_init=n_init,
            n_jobs=n_jobs,
            backend=backend,
            early_stopping=early_stopping,
            batch_size=batch_size,
        )
        return runner.run(dataset, seed=seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def validate_n_clusters(n_clusters: int, n_objects: int) -> int:
    """Validate a cluster-count hyperparameter against a dataset size."""
    if not isinstance(n_clusters, (int, np.integer)) or n_clusters < 1:
        raise InvalidParameterError(
            f"n_clusters must be a positive integer, got {n_clusters!r}"
        )
    if n_clusters > n_objects:
        raise InvalidParameterError(
            f"n_clusters ({n_clusters}) exceeds dataset size ({n_objects})"
        )
    return int(n_clusters)


def labels_from_clusters(
    clusters: Sequence[Sequence[int]], n_objects: int
) -> IntArray:
    """Inverse of :meth:`ClusteringResult.clusters` (unassigned -> -1)."""
    labels = np.full(n_objects, -1, dtype=np.int64)
    for cluster_id, members in enumerate(clusters):
        for idx in members:
            labels[idx] = cluster_id
    return labels
