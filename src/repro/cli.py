"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table2`` / ``table3`` / ``figure4`` / ``figure5``
    Regenerate one paper artifact and print it.
``report``
    Run all four and write a markdown report (default: EXPERIMENTS.md
    body to stdout, ``--output FILE`` to write a file).
``demo``
    One-minute demonstration: cluster uncertain blobs with every
    algorithm and print the score table.

Examples
--------
::

    python -m repro table2 --datasets iris wine --families normal --runs 3
    python -m repro figure5 --base-size 50000
    python -m repro report --output EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ACCURACY_ROSTER,
    ExperimentConfig,
    run_figure4,
    run_figure5,
    run_table2,
    run_table3,
)
from repro.experiments.figure4 import FIGURE4_DATASETS
from repro.experiments.table2 import TABLE2_DATASETS
from repro.experiments.table3 import TABLE3_CLUSTER_COUNTS, TABLE3_DATASETS


def _batch_size_arg(value: str):
    """--batch-size values: a positive int or the literal 'auto'."""
    if value == "auto":
        return "auto"
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"batch size must be a positive integer or 'auto', got {value!r}"
        ) from None
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"batch size must be >= 1, got {parsed}"
        )
    return parsed


def _lease_ttl_arg(value: str):
    """--lease-ttl values: a float no smaller than MIN_LEASE_TTL."""
    from repro.engine.sweep import MIN_LEASE_TTL

    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"lease ttl must be a number of seconds, got {value!r}"
        ) from None
    if parsed < MIN_LEASE_TTL:
        raise argparse.ArgumentTypeError(
            f"lease ttl must be >= {MIN_LEASE_TTL}s (shorter than the "
            "clamped heartbeat interval allows a healthy worker's lease "
            f"to expire between renewals), got {parsed}"
        )
    return parsed


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--runs", type=int, default=5, help="runs per cell")
    parser.add_argument("--seed", type=int, default=2012, help="master seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="dataset scale in (0, 1]; defaults to 1.0 (table3/figure4 "
        "and the sweep cap their *default* for laptop runtimes — an "
        "explicit value, including 1.0, is always honored)",
    )
    parser.add_argument(
        "--max-objects",
        type=int,
        default=600,
        help="cap on benchmark sizes (0 = uncapped)",
    )
    parser.add_argument(
        "--spread", type=float, default=1.0, help="uncertainty magnitude"
    )
    parser.add_argument(
        "--backend",
        choices=["serial", "threads", "processes", "auto"],
        default="serial",
        help="execution backend for the per-run fits (result-identical; "
        "'auto' dispatches per algorithm family)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="workers for the threads/processes backends",
    )
    parser.add_argument(
        "--batch-size",
        type=_batch_size_arg,
        default=1,
        help="restarts submitted per pool task (in-worker batching; "
        "result-identical; 'auto' sizes chunks from measured per-fit "
        "latency)",
    )


def _config(args: argparse.Namespace, **overrides) -> ExperimentConfig:
    max_objects = None if args.max_objects == 0 else args.max_objects
    values = dict(
        scale=1.0 if args.scale is None else args.scale,
        max_objects=max_objects,
        n_runs=args.runs,
        seed=args.seed,
        spread=args.spread,
        backend=args.backend,
        n_jobs=args.jobs,
        batch_size=args.batch_size,
    )
    values.update(overrides)
    return ExperimentConfig(**values)


def _cmd_table2(args: argparse.Namespace) -> int:
    report = run_table2(
        _config(args),
        datasets=args.datasets,
        families=args.families,
        algorithms=args.algorithms,
    )
    print(report.render("theta"))
    print()
    print(report.render("quality"))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    report = run_table3(
        _config(args, scale=0.02 if args.scale is None else args.scale),
        datasets=args.datasets,
        cluster_counts=args.cluster_counts,
        algorithms=args.algorithms,
    )
    print(report.render())
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    report = run_figure4(
        _config(args, scale=0.05 if args.scale is None else args.scale),
        datasets=args.datasets,
    )
    print(report.render())
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    report = run_figure5(_config(args), base_size=args.base_size)
    print(report.render())
    return 0


def _sweep_grid(args: argparse.Namespace):
    """The grid a ``repro sweep`` invocation covers."""
    from repro.engine.sweep import (
        Figure4Spec,
        Figure5Spec,
        SweepGrid,
        Table2Spec,
        Table3Spec,
    )

    if args.quick:
        runs = min(args.runs, 2)
        bench = _config(
            args, scale=0.2, max_objects=60, n_runs=runs, n_samples=8
        )
        micro = _config(args, scale=0.004, n_runs=runs, n_samples=8)
        specs = {
            "table2": Table2Spec(
                config=bench,
                datasets=("iris",),
                families=("normal",),
                algorithms=("UKM", "UKmed"),
            ),
            "table3": Table3Spec(
                config=micro,
                datasets=("neuroblastoma",),
                cluster_counts=(2, 3),
                algorithms=("UKmed", "MMV"),
            ),
            "figure4": Figure4Spec(
                config=_config(
                    args, scale=0.02, max_objects=80, n_runs=runs, n_samples=8
                ),
                datasets=("abalone",),
            ),
            "figure5": Figure5Spec(
                config=_config(args, n_runs=runs, n_samples=8),
                fractions=(0.25, 1.0),
                algorithms=("UKM", "MMV"),
                base_size=min(args.base_size, 2000),
            ),
        }
    else:
        capped = lambda cap: cap if args.scale is None else args.scale  # noqa: E731
        specs = {
            "table2": Table2Spec(config=_config(args)),
            "table3": Table3Spec(config=_config(args, scale=capped(0.02))),
            "figure4": Figure4Spec(config=_config(args, scale=capped(0.05))),
            "figure5": Figure5Spec(
                config=_config(args), base_size=args.base_size
            ),
        }
    return SweepGrid(
        **{
            name: (spec if name in args.surfaces else None)
            for name, spec in specs.items()
        }
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.engine.sweep import (
        run_sweep,
        run_sweep_worker,
        run_sweep_workers,
    )
    from repro.exceptions import SweepStoreError

    if args.store is None and args.join is None:
        print("error: provide --store PATH (or --join PATH)", file=sys.stderr)
        return 2
    grid = _sweep_grid(args)
    try:
        if args.join is not None:
            outcome = run_sweep_worker(
                grid,
                args.join,
                lease_ttl=args.lease_ttl,
                progress=print,
                store_backend=args.store_backend,
            )
        elif args.workers > 1:
            outcome = run_sweep_workers(
                grid,
                args.store,
                workers=args.workers,
                lease_ttl=args.lease_ttl,
                progress=print,
                store_backend=args.store_backend,
            )
        else:
            outcome = run_sweep(
                grid,
                args.store,
                resume=args.resume,
                progress=print,
                store_backend=args.store_backend,
            )
    except SweepStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"sweep complete: {outcome.summary()} (store: {outcome.store_root})")
    return 0


def _cmd_store_migrate(args: argparse.Namespace) -> int:
    from repro.engine.store import migrate_store
    from repro.exceptions import SweepStoreError

    try:
        report = migrate_store(
            args.src,
            args.dst,
            source_backend=args.src_backend,
            destination_backend=args.dst_backend,
            progress=print if args.verbose else None,
        )
    except SweepStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0


def _cmd_store_diff(args: argparse.Namespace) -> int:
    from repro.engine.store import diff_stores
    from repro.exceptions import SweepStoreError

    try:
        differences = diff_stores(
            args.left,
            args.right,
            left_backend=args.left_backend,
            right_backend=args.right_backend,
        )
    except SweepStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if differences:
        for line in differences:
            print(line)
        print(f"stores differ ({len(differences)} difference(s))")
        return 1
    print(f"stores identical: {args.left} == {args.right}")
    return 0


def _cmd_store_summary(args: argparse.Namespace) -> int:
    from repro.engine.store import open_store
    from repro.exceptions import SweepStoreError
    from repro.utils.tables import format_table

    store = open_store(args.path, backend=args.backend)
    try:
        manifest = store.read_manifest()
        if manifest is None:
            print(f"error: {args.path} has no sweep manifest", file=sys.stderr)
            return 2
        summary = store.metric_summary()
        print(
            format_table(
                [list(row) for row in summary],
                headers=["surface", "metric", "cells", "min", "max", "mean"],
                title=f"{store.backend} store {store.path}",
            )
        )
        if args.metric:
            mode = args.mode
            best = store.best_cells(args.metric, mode=mode)
            print()
            print(
                format_table(
                    [
                        [surface, "/".join(group), name, value]
                        for surface, group, name, value in best
                    ],
                    headers=["surface", "group", "best cell", args.metric],
                    title=f"best ({mode}) per group — {args.metric}",
                )
            )
            ranked = store.rank_over_grid(args.metric, mode=mode)
            print()
            print(
                format_table(
                    [list(row) for row in ranked[: args.top]],
                    headers=["rank", "cell", "surface", args.metric],
                    title=f"rank over grid — {args.metric} (top {args.top})",
                )
            )
    except SweepStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        store.close()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import (
        collect_artifacts,
        render_markdown,
        write_experiments_report,
    )

    from repro.exceptions import SweepStoreError

    try:
        artifacts = collect_artifacts(
            table2_config=_config(args),
            table3_config=_config(args, scale=0.02, n_runs=max(1, args.runs // 2)),
            figure4_config=_config(args, scale=0.05, n_runs=max(1, args.runs // 2)),
            figure5_config=_config(args, n_runs=max(1, args.runs // 2)),
            figure5_base_size=args.base_size,
            store=args.store,
            resume=args.resume,
            store_backend=args.store_backend,
        )
    except SweepStoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    from repro.experiments.shapes import run_all_checks

    checks = run_all_checks(
        artifacts.table2, artifacts.table3, artifacts.figure4, artifacts.figure5
    )
    check_lines = "\n".join(f"- {check}" for check in checks)
    preamble = (
        "# Measured paper artifacts\n\n"
        "## Qualitative shape checks\n\n" + check_lines + "\n"
    )
    if args.output:
        write_experiments_report(args.output, artifacts, preamble=preamble)
        print(f"wrote {args.output}")
    else:
        print(render_markdown(artifacts, preamble=preamble))
    for check in checks:
        print(check)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import f_measure, internal_scores, make_blobs_uncertain
    from repro.experiments.config import build_algorithm
    from repro.utils.tables import format_table

    data = make_blobs_uncertain(
        n_objects=150, n_clusters=3, separation=6.0, seed=args.seed
    )
    rows = []
    for name in args.algorithms:
        algorithm = build_algorithm(name, n_clusters=3, n_samples=16)
        # Objective-less algorithms (FDB/FOPT/UAHC) cannot rank restarts,
        # so best-of-n would burn n fits and keep the first — skip it.
        if args.n_init > 1 and algorithm.has_objective:
            result = algorithm.fit_best(
                data,
                seed=args.seed,
                n_init=args.n_init,
                n_jobs=args.jobs,
                backend=args.backend,
                early_stopping=args.patience,
                batch_size=args.batch_size,
            )
        else:
            result = algorithm.fit(data, seed=args.seed)
        rows.append(
            [
                name,
                f_measure(result.labels, data.labels),
                internal_scores(data, result.labels).quality,
                result.runtime_seconds * 1e3,
            ]
        )
    title = "Uncertain-blob demo (n=150, k=3)"
    if args.n_init > 1:
        title += f", best of {args.n_init} restarts"
    print(
        format_table(
            rows,
            headers=["algorithm", "F-measure", "Q", "time [ms]"],
            title=title,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for Gullo & Tagarelli, VLDB 2012.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p2 = sub.add_parser("table2", help="accuracy on benchmark datasets")
    _add_common(p2)
    p2.add_argument("--datasets", nargs="+", default=list(TABLE2_DATASETS))
    p2.add_argument(
        "--families",
        nargs="+",
        default=["uniform", "normal", "exponential"],
    )
    p2.add_argument("--algorithms", nargs="+", default=list(ACCURACY_ROSTER))
    p2.set_defaults(func=_cmd_table2)

    p3 = sub.add_parser("table3", help="Q on microarray stand-ins")
    _add_common(p3)
    p3.add_argument("--datasets", nargs="+", default=list(TABLE3_DATASETS))
    p3.add_argument(
        "--cluster-counts",
        nargs="+",
        type=int,
        default=list(TABLE3_CLUSTER_COUNTS),
    )
    p3.add_argument("--algorithms", nargs="+", default=list(ACCURACY_ROSTER))
    p3.set_defaults(func=_cmd_table3)

    p4 = sub.add_parser("figure4", help="efficiency comparison")
    _add_common(p4)
    p4.add_argument("--datasets", nargs="+", default=list(FIGURE4_DATASETS))
    p4.set_defaults(func=_cmd_figure4)

    p5 = sub.add_parser("figure5", help="scalability on the KDD workload")
    _add_common(p5)
    p5.add_argument("--base-size", type=int, default=20000)
    p5.set_defaults(func=_cmd_figure5)

    ps = sub.add_parser(
        "sweep",
        help="run the paper grid as one shared-cache, resumable schedule",
    )
    _add_common(ps)
    ps.add_argument(
        "--store",
        default=None,
        help="result-store path: a directory (JSON backend) or a "
        ".sqlite file (SQLite backend)",
    )
    ps.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run the grid with this many claim-based worker processes "
        "(leases on the store coordinate them; the final store is "
        "identical to a single-worker run)",
    )
    ps.add_argument(
        "--join",
        metavar="PATH",
        default=None,
        help="attach to PATH as one claim-based sweep worker (other "
        "workers — local or remote — may share the store; implies "
        "resume semantics)",
    )
    ps.add_argument(
        "--lease-ttl",
        type=_lease_ttl_arg,
        default=30.0,
        help="seconds a cell lease lives between heartbeats; a dead "
        "worker's cells are reclaimed after this long",
    )
    ps.add_argument(
        "--store-backend",
        choices=["json", "sqlite"],
        default=None,
        help="force a store backend (default: resolve from the path — "
        "a .sqlite/.db suffix or existing file means sqlite, anything "
        "else the JSON directory layout)",
    )
    ps.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed cells from the store (bit-identical skip)",
    )
    ps.add_argument(
        "--surfaces",
        nargs="+",
        choices=["table2", "table3", "figure4", "figure5"],
        default=["table2", "table3", "figure4", "figure5"],
        help="paper surfaces to include in the grid",
    )
    ps.add_argument(
        "--quick",
        action="store_true",
        help="tiny smoke grid (CI): 1-2 datasets per surface, short runs",
    )
    ps.add_argument("--base-size", type=int, default=20000)
    ps.set_defaults(func=_cmd_sweep)

    pr = sub.add_parser("report", help="run everything, render markdown")
    _add_common(pr)
    pr.add_argument("--base-size", type=int, default=20000)
    pr.add_argument("--output", default=None, help="write to this file")
    pr.add_argument(
        "--store",
        default=None,
        help="route the four suites through the sweep orchestrator, "
        "persisting every cell in this resumable result store "
        "(directory = JSON backend, .sqlite file = SQLite backend)",
    )
    pr.add_argument(
        "--store-backend",
        choices=["json", "sqlite"],
        default=None,
        help="force a store backend (default: resolve from the path)",
    )
    pr.add_argument(
        "--resume",
        action="store_true",
        help="with --store: reuse completed cells from an earlier run",
    )
    pr.set_defaults(func=_cmd_report)

    pst = sub.add_parser(
        "store", help="result-store utilities (migrate, diff, summary)"
    )
    store_sub = pst.add_subparsers(dest="store_command", required=True)

    pm = store_sub.add_parser(
        "migrate",
        help="copy a store between backends (JSON <-> SQLite), "
        "verifying cell-for-cell payload equality",
    )
    pm.add_argument("src", help="source store path")
    pm.add_argument("dst", help="destination store path (must be fresh)")
    pm.add_argument(
        "--src-backend",
        choices=["json", "sqlite"],
        default=None,
        help="force the source backend (default: resolve from the path)",
    )
    pm.add_argument(
        "--dst-backend",
        choices=["json", "sqlite"],
        default=None,
        help="force the destination backend (default: resolve from the path)",
    )
    pm.add_argument(
        "--verbose", action="store_true", help="print one line per cell"
    )
    pm.set_defaults(func=_cmd_store_migrate)

    pdf = store_sub.add_parser(
        "diff",
        help="compare two stores cell-for-cell (exit 1 when they "
        "differ); backends may differ — payloads are canonical JSON "
        "on both",
    )
    pdf.add_argument("left", help="first store path")
    pdf.add_argument("right", help="second store path")
    pdf.add_argument(
        "--left-backend",
        choices=["json", "sqlite"],
        default=None,
        help="force the first store's backend",
    )
    pdf.add_argument(
        "--right-backend",
        choices=["json", "sqlite"],
        default=None,
        help="force the second store's backend",
    )
    pdf.set_defaults(func=_cmd_store_diff)

    pq = store_sub.add_parser(
        "summary",
        help="aggregate a result store (SQL-side on the SQLite backend)",
    )
    pq.add_argument("path", help="store path")
    pq.add_argument(
        "--backend",
        choices=["json", "sqlite"],
        default=None,
        help="force the store backend (default: resolve from the path)",
    )
    pq.add_argument(
        "--metric",
        default=None,
        help="also print best-of-group and rank-over-grid for this metric",
    )
    pq.add_argument(
        "--mode",
        choices=["max", "min"],
        default="max",
        help="whether larger or smaller metric values rank first",
    )
    pq.add_argument(
        "--top",
        type=int,
        default=10,
        help="rows of the rank table to print",
    )
    pq.set_defaults(func=_cmd_store_summary)

    pd = sub.add_parser("demo", help="one-minute algorithm comparison")
    pd.add_argument("--seed", type=int, default=0)
    pd.add_argument(
        "--algorithms",
        nargs="+",
        default=list(ACCURACY_ROSTER),
        help="algorithm abbreviations to compare (default: the paper's "
        "accuracy roster; scale-path variants bUKM-EH and MB-UKM are "
        "also accepted)",
    )
    pd.add_argument(
        "--n-init",
        type=int,
        default=1,
        help="random restarts per algorithm (best objective wins)",
    )
    pd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="workers for the restarts (1 = sequential)",
    )
    pd.add_argument(
        "--backend",
        choices=["serial", "threads", "processes", "auto"],
        default=None,
        help="execution backend (default: serial, or processes when "
        "--jobs > 1; 'auto' dispatches per algorithm family)",
    )
    pd.add_argument(
        "--batch-size",
        type=_batch_size_arg,
        default=1,
        help="restarts submitted per pool task (in-worker batching; "
        "'auto' adapts to measured per-fit latency)",
    )
    pd.add_argument(
        "--patience",
        type=int,
        default=None,
        help="stop scheduling restarts after this many without "
        "improvement (engine-level early stopping)",
    )
    pd.set_defaults(func=_cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
