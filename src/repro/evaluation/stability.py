"""Run-to-run stability of non-deterministic clusterers.

The paper averages 50 runs "to avoid that clustering results were
biased by random chance"; this module quantifies the flip side — how
much a method's output *varies* across those runs.  Stability is the
mean pairwise agreement (Adjusted Rand Index by default) between the
labelings produced from independent seeds; 1 means the algorithm is
effectively deterministic on the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import UncertainClusterer
from repro.evaluation.external import adjusted_rand_index
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class StabilityResult:
    """Pairwise-agreement statistics over independent runs."""

    mean_agreement: float
    min_agreement: float
    max_agreement: float
    n_runs: int

    @property
    def is_stable(self) -> bool:
        """Heuristic flag: mean pairwise agreement above 0.9."""
        return self.mean_agreement > 0.9


def clustering_stability(
    algorithm: UncertainClusterer,
    dataset: UncertainDataset,
    n_runs: int = 10,
    seed: SeedLike = None,
    agreement: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
) -> StabilityResult:
    """Measure run-to-run agreement of ``algorithm`` on ``dataset``.

    Parameters
    ----------
    algorithm:
        Any library clusterer.
    n_runs:
        Independent runs to compare (all pairs are scored).
    agreement:
        Pairwise labeling-agreement function; defaults to the Adjusted
        Rand Index.
    """
    if n_runs < 2:
        raise InvalidParameterError(f"n_runs must be >= 2, got {n_runs}")
    score = agreement if agreement is not None else adjusted_rand_index
    labelings: List[np.ndarray] = []
    for run_seed in spawn_rngs(seed, n_runs):
        labelings.append(algorithm.fit(dataset, seed=run_seed).labels)
    values = []
    for i in range(n_runs - 1):
        for j in range(i + 1, n_runs):
            # ARI expects nonnegative reference labels; remap noise.
            ref = labelings[j].copy()
            if np.any(ref < 0):
                ref[ref < 0] = ref.max() + 1
            values.append(float(score(labelings[i], ref)))
    arr = np.array(values)
    return StabilityResult(
        mean_agreement=float(arr.mean()),
        min_agreement=float(arr.min()),
        max_agreement=float(arr.max()),
        n_runs=n_runs,
    )
