"""The Case-1 / Case-2 evaluation protocol and Theta (S19).

Section 5.1 of the paper compares, for every clustering method:

* **Case 1** — clustering the perturbed deterministic dataset ``D'``
  (uncertainty ignored), scored as ``F(C', C~)``;
* **Case 2** — clustering the uncertain dataset ``D''`` (uncertainty
  modeled), scored as ``F(C'', C~)``;

and reports ``Theta = F(C'') - F(C') ∈ [-1, 1]`` — positive when
modeling the uncertainty *helps* that method.  Table 2 reports Theta
(external) alongside Q (internal, Case-2 clustering only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._typing import SeedLike
from repro.clustering.base import UncertainClusterer
from repro.datagen.uncertainty_gen import UncertainDataPair
from repro.engine.distances import pinned_pairwise_ed, resolve_pairwise_ed
from repro.evaluation.external import f_measure
from repro.evaluation.internal import internal_scores
from repro.exceptions import InvalidParameterError
from repro.objects.distance import validate_pairwise_ed
from repro.utils.rng import spawn_rngs


@dataclass(frozen=True)
class ThetaResult:
    """Scores of one paired Case-1 / Case-2 evaluation.

    Attributes
    ----------
    f_case1, f_case2:
        F-measures of the Case-1 / Case-2 clusterings vs. the reference.
    quality:
        Internal criterion Q of the Case-2 clustering.
    runtime_case2:
        On-line clustering seconds of the Case-2 run.
    """

    f_case1: float
    f_case2: float
    quality: float
    runtime_case2: float

    @property
    def theta(self) -> float:
        """``Theta = F(C'') - F(C')`` of Section 5.1."""
        return self.f_case2 - self.f_case1


def evaluate_theta(
    algorithm: UncertainClusterer,
    pair: UncertainDataPair,
    seed: SeedLike = None,
    distances: Optional[np.ndarray] = None,
) -> ThetaResult:
    """Run one algorithm through the paired protocol.

    Parameters
    ----------
    algorithm:
        Any library clusterer; it is fitted twice (on ``D'`` and ``D''``).
    pair:
        The paired datasets from
        :meth:`~repro.datagen.uncertainty_gen.UncertaintyGenerator.generate`.
    seed:
        Seeds both runs (independently spawned).
    distances:
        Optional precomputed ``ÊD`` matrix of ``pair.uncertain`` for the
        internal criterion; defaults to the dataset's cached
        :meth:`~repro.objects.dataset.UncertainDataset.pairwise_ed`.
        For ``wants_pairwise_ed`` algorithms (UK-medoids) the same
        matrix is threaded into the Case-2 fit — and ``pair.perturbed``'s
        cached matrix into the Case-1 fit — so neither fit rebuilds the
        O(n^2 m) matrix the protocol already holds.
    """
    reference = pair.uncertain.labels
    if reference is None:
        raise InvalidParameterError(
            "the protocol needs reference labels on the uncertain dataset"
        )
    if distances is None:
        distances = pair.uncertain.pairwise_ed()
    else:
        # The supplied matrix now feeds the Case-2 *fits*, not just the
        # internal criterion — reject non-ÊD garbage loudly rather than
        # silently clustering on it.
        distances = validate_pairwise_ed(distances, len(pair.uncertain), "distances")
    rng1, rng2 = spawn_rngs(seed, 2)
    with pinned_pairwise_ed(
        algorithm, resolve_pairwise_ed(algorithm, pair.perturbed)
    ):
        result_case1 = algorithm.fit(pair.perturbed, seed=rng1)
    with pinned_pairwise_ed(
        algorithm, resolve_pairwise_ed(algorithm, pair.uncertain, distances)
    ):
        result_case2 = algorithm.fit(pair.uncertain, seed=rng2)
    internal = internal_scores(pair.uncertain, result_case2.labels, distances)
    return ThetaResult(
        f_case1=f_measure(result_case1.labels, reference),
        f_case2=f_measure(result_case2.labels, reference),
        quality=internal.quality,
        runtime_case2=result_case2.runtime_seconds,
    )


@dataclass(frozen=True)
class AveragedThetaResult:
    """Multi-run average of :class:`ThetaResult` (the paper uses 50 runs)."""

    theta_mean: float
    theta_std: float
    quality_mean: float
    quality_std: float
    runtime_mean: float
    n_runs: int


def evaluate_theta_multirun(
    algorithm: UncertainClusterer,
    pair: UncertainDataPair,
    n_runs: int = 10,
    seed: SeedLike = None,
    distances: Optional[np.ndarray] = None,
    engine: bool = True,
    backend: str = "serial",
    n_jobs: int = 1,
    batch_size: "int | str" = 1,
) -> AveragedThetaResult:
    """Average the paired protocol over independent runs.

    The paper averages every measurement over 50 runs to wash out
    non-deterministic initialization; the experiment harness defaults to
    fewer runs for laptop runtimes (configurable).

    With ``engine=True`` the Case-1 and Case-2 fit series each execute
    through :func:`repro.engine.fit_runs` — every run reads the same
    dataset moment cache and (for sample-based algorithms with
    initialization randomness) one shared sample tensor per dataset
    instead of re-drawing per run.  Algorithms whose only randomness is
    the Monte-Carlo draw (FDBSCAN/FOPTICS) keep per-run independent
    draws, preserving the paper's averaging semantics.  The per-run
    seeds are derived exactly as in the direct loop, so the
    moment-based and sample-deterministic algorithms produce identical
    averages either way.

    The scoring ``ÊD`` matrix is computed once (or taken from
    ``distances``) and reused everywhere it appears: the internal
    criterion of every run *and* — for ``wants_pairwise_ed`` algorithms
    — the Case-2 fits themselves, with ``pair.perturbed``'s own cached
    matrix threaded into the Case-1 fits.  Neither of the ``2 x
    n_runs`` fits rebuilds a matrix the protocol already holds.

    ``backend``/``n_jobs``/``batch_size`` pick the execution backend
    (including ``"auto"``) and in-worker restart chunking for the two
    fit series (:mod:`repro.engine.backends`).  Backends and chunkings
    are result-identical for fixed seeds, so at the paper's 50-run
    protocol they change only how long the measurement takes.
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1, got {n_runs}")
    if distances is None:
        distances = pair.uncertain.pairwise_ed()
    else:
        # See evaluate_theta: the matrix feeds the Case-2 fits too.
        distances = validate_pairwise_ed(distances, len(pair.uncertain), "distances")
    reference = pair.uncertain.labels
    if reference is None:
        raise InvalidParameterError(
            "the protocol needs reference labels on the uncertain dataset"
        )
    seeds, sample_rng1, sample_rng2 = multirun_stream_plan(seed, n_runs)
    thetas = np.empty(n_runs)
    qualities = np.empty(n_runs)
    runtimes = np.empty(n_runs)
    if engine:
        from repro.engine import fit_runs

        # Mirror evaluate_theta's consumption of each run seed (one
        # spawned stream per case), then fit each case's series through
        # the engine.
        case_seeds = [spawn_rngs(run_seed, 2) for run_seed in seeds]
        results_case1 = fit_runs(
            algorithm,
            pair.perturbed,
            [run_pair[0] for run_pair in case_seeds],
            sample_seed=sample_rng1,
            backend=backend,
            n_jobs=n_jobs,
            batch_size=batch_size,
        )
        results_case2 = fit_runs(
            algorithm,
            pair.uncertain,
            [run_pair[1] for run_pair in case_seeds],
            sample_seed=sample_rng2,
            backend=backend,
            n_jobs=n_jobs,
            batch_size=batch_size,
            pairwise_ed=distances,
        )
        for run, (case1, case2) in enumerate(zip(results_case1, results_case2)):
            thetas[run] = f_measure(case2.labels, reference) - f_measure(
                case1.labels, reference
            )
            qualities[run] = internal_scores(
                pair.uncertain, case2.labels, distances
            ).quality
            runtimes[run] = case2.runtime_seconds
    else:
        for run, run_seed in enumerate(seeds):
            outcome = evaluate_theta(algorithm, pair, run_seed, distances)
            thetas[run] = outcome.theta
            qualities[run] = outcome.quality
            runtimes[run] = outcome.runtime_case2
    return AveragedThetaResult(
        theta_mean=float(thetas.mean()),
        theta_std=float(thetas.std()),
        quality_mean=float(qualities.mean()),
        quality_std=float(qualities.std()),
        runtime_mean=float(runtimes.mean()),
        n_runs=n_runs,
    )


def multirun_stream_plan(seed: SeedLike, n_runs: int):
    """The exact streams one :func:`evaluate_theta_multirun` call derives.

    Returns ``(run_seeds, sample_rng1, sample_rng2)``: one stream per
    run plus the two shared-tensor streams, consumed from ``seed`` in
    this fixed order regardless of routing mode or algorithm type.

    Exposed so schedulers that interleave completed and pending cells
    (the sweep orchestrator's ``--resume``) can *replay* a finished
    cell's seed consumption without running its fits — calling this
    function advances a stateful ``Generator`` seed exactly as the real
    evaluation would, keeping every later cell's streams bit-identical.
    """
    run_seeds = spawn_rngs(seed, n_runs)
    # Two extra streams for the shared-tensor draws.  Derived for every
    # algorithm type so ``seed`` consumption — and hence any caller
    # reusing the generator afterwards — never depends on the routing
    # mode or the roster position.
    sample_rng1, sample_rng2 = _extra_streams(seed, 2, already=n_runs)
    return run_seeds, sample_rng1, sample_rng2


def _extra_streams(seed: SeedLike, count: int, already: int):
    """``count`` fresh streams distinct from the first ``already`` ones.

    For a stateful :class:`Generator` seed the next spawn is already
    distinct; for int/None seeds the spawn is restarted from the seed
    sequence, so the first ``already`` children (handed out earlier)
    are skipped.
    """
    if isinstance(seed, np.random.Generator):
        return spawn_rngs(seed, count)
    return spawn_rngs(seed, already + count)[already:]
