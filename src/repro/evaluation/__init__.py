"""Cluster validity criteria and the paper's evaluation protocol (S17-S19)."""

from repro.evaluation.external import (
    adjusted_rand_index,
    contingency_matrix,
    f_measure,
    normalized_mutual_information,
    purity,
)
from repro.evaluation.internal import InternalScores, internal_scores, quality_score
from repro.evaluation.stability import StabilityResult, clustering_stability
from repro.evaluation.protocol import (
    AveragedThetaResult,
    ThetaResult,
    evaluate_theta,
    evaluate_theta_multirun,
    multirun_stream_plan,
)

__all__ = [
    "adjusted_rand_index",
    "contingency_matrix",
    "f_measure",
    "normalized_mutual_information",
    "purity",
    "InternalScores",
    "internal_scores",
    "quality_score",
    "StabilityResult",
    "clustering_stability",
    "AveragedThetaResult",
    "ThetaResult",
    "evaluate_theta",
    "evaluate_theta_multirun",
    "multirun_stream_plan",
]
