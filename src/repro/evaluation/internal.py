"""Internal cluster-validity criteria (S18).

Section 5.1 of the paper defines, for a clustering ``C`` of uncertain
objects, the average intra-cluster distance

    intra(C) = (1/|C|) sum_C [ 1/(|C|(|C|-1)) sum_{o != o' in C} ÊD(o, o') ]

and the average inter-cluster distance

    inter(C) = (1/(|C|(|C|-1))) sum_{C != C'} [ 1/(|C||C'|)
               sum_{o in C} sum_{o' in C'} ÊD(o, o') ],

both normalized into [0, 1] before being combined into the quality score
``Q(C) = inter(C) - intra(C) ∈ [-1, 1]`` (higher is better).

Normalization divides by the maximum pairwise ÊD over the dataset, which
maps both averages into [0, 1] while preserving their ordering across
clusterings of the same data.  Noise objects (label -1) are excluded —
they belong to no cluster.  Clusters with fewer than two members
contribute zero intra-distance (they are perfectly cohesive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.distance import pairwise_squared_expected_distances


@dataclass(frozen=True)
class InternalScores:
    """Intra / inter / Q values of one clustering."""

    intra: float
    inter: float

    @property
    def quality(self) -> float:
        """``Q = inter - intra`` (Section 5.1), in [-1, 1]."""
        return self.inter - self.intra


def internal_scores(
    dataset: UncertainDataset,
    labels: np.ndarray,
    distances: Optional[np.ndarray] = None,
    noise_policy: str = "residual",
) -> InternalScores:
    """Compute the paper's normalized intra/inter criteria.

    Parameters
    ----------
    dataset:
        The clustered objects.
    labels:
        Cluster label per object; -1 marks noise.
    distances:
        Optional precomputed pairwise ``ÊD`` matrix (reused across the
        many clusterings scored in one experiment).
    noise_policy:
        ``"residual"`` (default) — noise objects form one residual
        cluster, mirroring the F-measure's treatment, so an algorithm
        cannot inflate Q by declaring awkward objects noise;
        ``"exclude"`` — noise objects are dropped from the evaluation.
    """
    if noise_policy not in ("residual", "exclude"):
        raise InvalidParameterError(
            f"noise_policy must be 'residual' or 'exclude', got {noise_policy!r}"
        )
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != len(dataset):
        raise InvalidParameterError("labels length must match dataset size")
    if noise_policy == "residual" and np.any(labels < 0):
        labels = labels.copy()
        labels[labels < 0] = labels.max() + 1
    if distances is None:
        distances = pairwise_squared_expected_distances(dataset)

    max_dist = float(distances.max())
    if max_dist <= 0.0:
        return InternalScores(intra=0.0, inter=0.0)

    cluster_ids = np.unique(labels[labels >= 0])
    if cluster_ids.size == 0:
        return InternalScores(intra=0.0, inter=0.0)

    members = [np.flatnonzero(labels == c) for c in cluster_ids]

    # intra: average over clusters of the mean pairwise ÊD inside each.
    # Singleton clusters have an undefined (0/0) term in the paper's
    # formula; they are excluded from the average rather than counted as
    # zero — counting them as zero would let a clustering inflate Q by
    # shedding singletons.
    intra_terms = []
    for idx in members:
        size = idx.size
        if size < 2:
            continue
        block = distances[np.ix_(idx, idx)]
        off_diag = block.sum() - np.trace(block)
        intra_terms.append(off_diag / (size * (size - 1)))
    if intra_terms:
        intra = float(np.mean(intra_terms)) / max_dist
    else:
        intra = 0.0

    # inter: average over ordered cluster pairs of the mean cross ÊD.
    k = len(members)
    if k < 2:
        inter = 0.0
    else:
        total = 0.0
        for a in range(k):
            for b in range(k):
                if a == b:
                    continue
                block = distances[np.ix_(members[a], members[b])]
                total += block.mean()
        inter = total / (k * (k - 1)) / max_dist

    return InternalScores(intra=float(np.clip(intra, 0.0, 1.0)),
                          inter=float(np.clip(inter, 0.0, 1.0)))


def quality_score(
    dataset: UncertainDataset,
    labels: np.ndarray,
    distances: Optional[np.ndarray] = None,
) -> float:
    """Shorthand for ``internal_scores(...).quality``."""
    return internal_scores(dataset, labels, distances).quality
