"""External cluster-validity criteria (S17).

The paper's accuracy experiments use the F-measure of Section 5.1:

    F(C, C~) = (1/|D|) * sum_u |C~_u| * max_v F_uv,

with per-(class, cluster) precision ``P_uv = |C_v ∩ C~_u| / |C_v|`` and
recall ``R_uv = |C_v ∩ C~_u| / |C~_u|``.  Noise objects (label -1, from
density-based methods) form their own singleton-like cluster bucket so
that every object participates, mirroring the treatment of unassigned
objects as a residual group.

Purity, NMI and ARI are provided as supplementary criteria (not in the
paper's tables, useful for downstream users and ablations).
"""

from __future__ import annotations

import numpy as np

from repro._typing import IntArray
from repro.exceptions import InvalidParameterError


def _check_labelings(predicted: np.ndarray, reference: np.ndarray) -> tuple:
    predicted = np.asarray(predicted, dtype=np.int64)
    reference = np.asarray(reference, dtype=np.int64)
    if predicted.shape != reference.shape or predicted.ndim != 1:
        raise InvalidParameterError(
            "predicted and reference labelings must be 1-D arrays of equal length"
        )
    if predicted.size == 0:
        raise InvalidParameterError("labelings must be non-empty")
    if np.any(reference < 0):
        raise InvalidParameterError("reference labels must be nonnegative")
    return predicted, reference


def contingency_matrix(predicted: np.ndarray, reference: np.ndarray) -> IntArray:
    """Counts ``N[u, v] = |C_v ∩ C~_u|`` (classes on rows, clusters on columns).

    Noise labels (-1) in ``predicted`` are remapped to a dedicated last
    column so every object is counted.
    """
    predicted, reference = _check_labelings(predicted, reference)
    classes = np.unique(reference)
    clusters = np.unique(predicted)
    class_index = {int(c): i for i, c in enumerate(classes)}
    cluster_index = {int(c): i for i, c in enumerate(clusters)}
    table = np.zeros((classes.size, clusters.size), dtype=np.int64)
    for ref, pred in zip(reference, predicted):
        table[class_index[int(ref)], cluster_index[int(pred)]] += 1
    return table


def f_measure(predicted: np.ndarray, reference: np.ndarray) -> float:
    """The paper's F-measure ``F(C, C~)`` in [0, 1] (higher is better)."""
    table = contingency_matrix(predicted, reference)
    n = int(table.sum())
    class_sizes = table.sum(axis=1).astype(np.float64)  # |C~_u|
    cluster_sizes = table.sum(axis=0).astype(np.float64)  # |C_v|
    score = 0.0
    for u in range(table.shape[0]):
        best = 0.0
        for v in range(table.shape[1]):
            overlap = float(table[u, v])
            if overlap == 0.0 or cluster_sizes[v] == 0.0:
                continue
            precision = overlap / cluster_sizes[v]
            recall = overlap / class_sizes[u]
            best = max(best, 2.0 * precision * recall / (precision + recall))
        score += class_sizes[u] * best
    return score / n


def purity(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of objects in their cluster's majority class."""
    table = contingency_matrix(predicted, reference)
    return float(table.max(axis=0).sum() / table.sum())


def normalized_mutual_information(
    predicted: np.ndarray, reference: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    table = contingency_matrix(predicted, reference).astype(np.float64)
    n = table.sum()
    joint = table / n
    p_class = joint.sum(axis=1)
    p_cluster = joint.sum(axis=0)
    mutual = 0.0
    for u in range(table.shape[0]):
        for v in range(table.shape[1]):
            if joint[u, v] > 0.0:
                mutual += joint[u, v] * np.log(
                    joint[u, v] / (p_class[u] * p_cluster[v])
                )

    def entropy(p: np.ndarray) -> float:
        nz = p[p > 0.0]
        return float(-(nz * np.log(nz)).sum())

    h_class = entropy(p_class)
    h_cluster = entropy(p_cluster)
    denom = 0.5 * (h_class + h_cluster)
    if denom == 0.0:
        return 1.0 if mutual == 0.0 else 0.0
    return float(np.clip(mutual / denom, 0.0, 1.0))


def adjusted_rand_index(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Adjusted Rand index in [-1, 1] (1 = identical partitions)."""
    table = contingency_matrix(predicted, reference).astype(np.float64)
    n = table.sum()

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1.0) / 2.0

    sum_cells = comb2(table).sum()
    sum_rows = comb2(table.sum(axis=1)).sum()
    sum_cols = comb2(table.sum(axis=0)).sum()
    total = comb2(np.array([n]))[0]
    expected = sum_rows * sum_cols / total if total > 0 else 0.0
    max_index = 0.5 * (sum_rows + sum_cols)
    if max_index == expected:
        return 1.0 if sum_cells == expected else 0.0
    return float((sum_cells - expected) / (max_index - expected))
