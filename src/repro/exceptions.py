"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still distinguishing the failure class when they
need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """An argument value is outside the accepted domain.

    Raised eagerly at construction/call time so that misconfiguration
    surfaces at the call site instead of deep inside an iteration loop.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Two entities that must share dimensionality do not.

    Examples: an uncertain object compared against a point of different
    length, or a dataset mixing objects of different dimensionality.
    """


class EmptyClusterError(ReproError, RuntimeError):
    """An operation that needs a non-empty cluster received an empty one."""


class EmptyDatasetError(ReproError, ValueError):
    """An operation that needs a non-empty dataset received an empty one."""


class NotFittedError(ReproError, RuntimeError):
    """A result attribute was accessed before the model was fitted."""


class ConvergenceWarning(UserWarning):
    """A clustering run hit its iteration cap before converging."""


class UnsupportedDistributionError(ReproError, TypeError):
    """A distribution family does not support the requested operation."""


class SweepStoreError(ReproError, RuntimeError):
    """A sweep result store cannot be (re)used as requested.

    Raised — on every store backend (JSON directory or SQLite file) —
    when a store belongs to a different grid, already holds results and
    ``resume`` was not requested, its manifest is unreadable, its
    substrate is corrupt (a truncated database, a non-store path), or a
    migration between backends fails verification — cases where
    silently writing on would mix measurements from incompatible
    schedules or lose cells.
    """
