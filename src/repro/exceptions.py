"""Exception hierarchy for the :mod:`repro` library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still distinguishing the failure class when they
need to.
"""

from __future__ import annotations

import sys
import warnings


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """An argument value is outside the accepted domain.

    Raised eagerly at construction/call time so that misconfiguration
    surfaces at the call site instead of deep inside an iteration loop.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Two entities that must share dimensionality do not.

    Examples: an uncertain object compared against a point of different
    length, or a dataset mixing objects of different dimensionality.
    """


class EmptyClusterError(ReproError, RuntimeError):
    """An operation that needs a non-empty cluster received an empty one."""


class EmptyDatasetError(ReproError, ValueError):
    """An operation that needs a non-empty dataset received an empty one."""


class NotFittedError(ReproError, RuntimeError):
    """A result attribute was accessed before the model was fitted."""


class ConvergenceWarning(UserWarning):
    """A clustering run hit its iteration cap before converging."""


def warn_convergence(message: str) -> None:
    """Emit a :class:`ConvergenceWarning` once per *fit*, reliably.

    ``warnings.warn`` records each (message, category, lineno) in the
    calling module's ``__warningregistry__``; under the ``"default"``
    filter action a second non-converged fit in the same process is then
    silently deduplicated, while under ``processes`` backends the
    registry lives in the worker and the warning never reaches the
    parent at all.  Calling :func:`warnings.warn_explicit` with a fresh
    registry sidesteps the cross-fit deduplication — every
    non-converged fit emits exactly one warning — while still honoring
    the active filters, so ``simplefilter("ignore", ConvergenceWarning)``
    keeps working.  (Cross-process visibility is handled separately: the
    multi-restart engine counts non-converged restarts in its extras and
    re-warns once in the parent.)
    """
    frame = sys._getframe(1)
    warnings.warn_explicit(
        message,
        ConvergenceWarning,
        frame.f_code.co_filename,
        frame.f_lineno,
        module=frame.f_globals.get("__name__", "repro"),
        registry={},
    )


class UnsupportedDistributionError(ReproError, TypeError):
    """A distribution family does not support the requested operation."""


class SweepStoreError(ReproError, RuntimeError):
    """A sweep result store cannot be (re)used as requested.

    Raised — on every store backend (JSON directory or SQLite file) —
    when a store belongs to a different grid, already holds results and
    ``resume`` was not requested, its manifest is unreadable, its
    substrate is corrupt (a truncated database, a non-store path), or a
    migration between backends fails verification — cases where
    silently writing on would mix measurements from incompatible
    schedules or lose cells.
    """
