"""Table 3 — accuracy (Q) on real microarray datasets (E2).

The paper's microarray datasets carry inherent probe-level uncertainty
and no reference classification, so only the internal criterion Q is
reported, for every cluster count k in {2, 3, 5, 10, 15, 20, 25, 30}.
The report reproduces the per-dataset average rows and the overall
average score/gain rows (paper: UCPC best overall, max gain +.534 vs
FDBSCAN, min +.034 vs MMVar; UAHC competitive on Neuroblastoma only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.microarray import make_microarray
from repro.engine import fit_runs
from repro.evaluation.internal import internal_scores
from repro.experiments.config import ACCURACY_ROSTER, ExperimentConfig, build_algorithm
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_table

#: Cluster counts of Table 3.
TABLE3_CLUSTER_COUNTS = (2, 3, 5, 10, 15, 20, 25, 30)

#: The two real datasets of Table 1-(b).
TABLE3_DATASETS = ("neuroblastoma", "leukaemia")


@dataclass
class Table3Report:
    """Q measurements of every (dataset, k, algorithm) cell."""

    datasets: Tuple[str, ...]
    cluster_counts: Tuple[int, ...]
    algorithms: Tuple[str, ...]
    quality: Dict[Tuple[str, int, str], float] = field(default_factory=dict)

    def dataset_average(self, dataset: str, algorithm: str) -> float:
        """Average Q over cluster counts (paper's "avg score" rows)."""
        values = [
            self.quality[(dataset, k, algorithm)] for k in self.cluster_counts
        ]
        return float(np.mean(values))

    def overall_average(self, algorithm: str) -> float:
        """Average over both datasets and every cluster count."""
        values = [
            self.quality[(ds, k, algorithm)]
            for ds in self.datasets
            for k in self.cluster_counts
        ]
        return float(np.mean(values))

    def overall_gain(self, algorithm: str) -> float:
        """UCPC's overall average Q minus ``algorithm``'s."""
        return self.overall_average("UCPC") - self.overall_average(algorithm)

    def render(self) -> str:
        """Monospace table in the paper's Table 3 layout."""
        rows: List[Sequence[object]] = []
        for ds in self.datasets:
            for k in self.cluster_counts:
                row: List[object] = [ds, k]
                row.extend(self.quality[(ds, k, alg)] for alg in self.algorithms)
                rows.append(row)
        for ds in self.datasets:
            rows.append(
                [f"{ds} avg", ""]
                + [self.dataset_average(ds, alg) for alg in self.algorithms]
            )
        rows.append(
            ["overall avg", ""]
            + [self.overall_average(alg) for alg in self.algorithms]
        )
        rows.append(
            ["overall gain", ""]
            + [
                None if alg == "UCPC" else self.overall_gain(alg)
                for alg in self.algorithms
            ]
        )
        headers = ["data", "#clust."] + list(self.algorithms)
        return format_table(rows, headers=headers, title="Table 3 — Quality (Q)")


# ----------------------------------------------------------------------
# Group / cell executors (shared with the sweep orchestrator)
# ----------------------------------------------------------------------
def prepare_table3_group(ds_name: str, ds_rng, config: ExperimentConfig):
    """Materialize one Table 3 dataset group (consumes ``ds_rng``)."""
    return make_microarray(
        ds_name, scale=config.scale, mass=config.mass, seed=ds_rng
    )


def run_table3_cell(
    alg_name: str,
    dataset,
    k: int,
    ds_rng,
    config: ExperimentConfig,
    distances: np.ndarray,
) -> float:
    """Mean Q of one (dataset, k, algorithm) cell of Table 3."""
    k_eff = min(k, len(dataset) - 1)
    algorithm = build_algorithm(
        alg_name, n_clusters=k_eff, n_samples=config.n_samples
    )
    # n_runs + 1 streams: the last seeds the shared tensor (when
    # applicable), so ds_rng consumption — and hence every later cell's
    # seeds — is identical whichever engine mode (and algorithm type)
    # ran before.
    streams = spawn_rngs(ds_rng, config.n_runs + 1)
    results = fit_runs(
        algorithm,
        dataset,
        streams[:-1],
        engine=config.engine,
        sample_seed=streams[-1],
        backend=config.backend,
        n_jobs=config.n_jobs,
        batch_size=config.batch_size,
        pairwise_ed=distances,
    )
    scores = np.array(
        [
            internal_scores(dataset, result.labels, distances).quality
            for result in results
        ]
    )
    return float(scores.mean())


def skip_table3_cell(ds_rng, config: ExperimentConfig) -> None:
    """Replay one cell's ``ds_rng`` consumption without running fits."""
    spawn_rngs(ds_rng, config.n_runs + 1)


def run_table3(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = TABLE3_DATASETS,
    cluster_counts: Sequence[int] = TABLE3_CLUSTER_COUNTS,
    algorithms: Sequence[str] = ACCURACY_ROSTER,
) -> Table3Report:
    """Regenerate Table 3 at the configured scale.

    Notes
    -----
    Default ``config.scale`` keeps the gene count laptop-sized (the
    paper's 22k genes make the O(n^2) competitors very slow — that is
    Figure 4's point, not Table 3's).  Q is averaged over
    ``config.n_runs`` runs per cell; with ``config.engine`` the runs
    execute through :func:`repro.engine.fit_runs`, sharing one sample
    tensor per (dataset, k, algorithm) cell.
    """
    config = config or ExperimentConfig(scale=0.02)
    report = Table3Report(
        datasets=tuple(datasets),
        cluster_counts=tuple(cluster_counts),
        algorithms=tuple(algorithms),
    )
    streams = spawn_rngs(config.seed, len(datasets))
    for ds_name, ds_rng in zip(datasets, streams):
        dataset = prepare_table3_group(ds_name, ds_rng, config)
        # Dataset-cached plane: scores every cell's internal criterion
        # and feeds UK-medoids' engine-routed fits below.
        distances = dataset.pairwise_ed()
        for k in cluster_counts:
            for alg_name in algorithms:
                report.quality[(ds_name, k, alg_name)] = run_table3_cell(
                    alg_name, dataset, k, ds_rng, config, distances
                )
    return report
