"""Experiment runners regenerating every table and figure of the paper (S23)."""

from repro.experiments.config import (
    ACCURACY_ROSTER,
    FAST_ROSTER,
    SCALABILITY_ROSTER,
    SLOW_ROSTER,
    ExperimentConfig,
    build_algorithm,
)
from repro.experiments.figure4 import FIGURE4_DATASETS, Figure4Report, run_figure4
from repro.experiments.shapes import ShapeCheck, run_all_checks
from repro.experiments.reporting import (
    PaperArtifacts,
    collect_artifacts,
    render_markdown,
    write_experiments_report,
)
from repro.experiments.figure5 import (
    FIGURE5_FRACTIONS,
    FIGURE5_K,
    Figure5Report,
    run_figure5,
)
from repro.experiments.table2 import (
    TABLE2_DATASETS,
    Table2Cell,
    Table2Report,
    run_table2,
)
from repro.experiments.table3 import (
    TABLE3_CLUSTER_COUNTS,
    TABLE3_DATASETS,
    Table3Report,
    run_table3,
)

__all__ = [
    "ACCURACY_ROSTER",
    "FAST_ROSTER",
    "SCALABILITY_ROSTER",
    "SLOW_ROSTER",
    "ExperimentConfig",
    "build_algorithm",
    "FIGURE4_DATASETS",
    "ShapeCheck",
    "run_all_checks",
    "PaperArtifacts",
    "collect_artifacts",
    "render_markdown",
    "write_experiments_report",
    "Figure4Report",
    "run_figure4",
    "FIGURE5_FRACTIONS",
    "FIGURE5_K",
    "Figure5Report",
    "run_figure5",
    "TABLE2_DATASETS",
    "Table2Cell",
    "Table2Report",
    "run_table2",
    "TABLE3_CLUSTER_COUNTS",
    "TABLE3_DATASETS",
    "Table3Report",
    "run_table3",
]
