"""Figure 4 — efficiency comparison (E3).

The paper plots on-line clustering runtimes (milliseconds) on the two
largest benchmarks (Abalone, Letter) and the two real datasets, with the
algorithms split into a "slower" group (UK-medoids, basic UK-means,
UAHC, FDBSCAN, FOPTICS) and a "faster" group (UK-means, MMVar,
MinMax-BB, VDBiP); UCPC is drawn in both plots as the common reference.

Expected reproduction shape: the slow group lands orders of magnitude
above UCPC; UCPC ≈ UK-means ≈ MMVar; the pruning variants sit between
basic UK-means and fast UK-means.  Off-line phases (moment/sample/
pairwise-distance precomputation, pruning-structure construction) are
excluded, matching Section 5.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.benchmarks import make_benchmark
from repro.datagen.microarray import make_microarray
from repro.datagen.uncertainty_gen import UncertaintyGenerator
from repro.engine import fit_runs
from repro.experiments.config import (
    FAST_ROSTER,
    SLOW_ROSTER,
    ExperimentConfig,
    build_algorithm,
)
from repro.objects.dataset import UncertainDataset
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_table

#: Default datasets of Figure 4 (benchmarks + real stand-ins).
FIGURE4_DATASETS = ("abalone", "letter", "neuroblastoma", "leukaemia")


@dataclass
class Figure4Report:
    """Mean clustering runtimes (milliseconds) per dataset and algorithm."""

    datasets: Tuple[str, ...]
    slow_group: Tuple[str, ...]
    fast_group: Tuple[str, ...]
    runtimes_ms: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def render(self) -> str:
        """Two tables mirroring the paper's left/right plot split."""
        blocks = []
        for title, roster in (
            ("Figure 4 (slower group) — runtimes [ms]", self.slow_group),
            ("Figure 4 (faster group) — runtimes [ms]", self.fast_group),
        ):
            columns = list(roster) + ["UCPC"]
            rows: List[Sequence[object]] = []
            for ds in self.datasets:
                rows.append(
                    [ds] + [self.runtimes_ms[(ds, alg)] for alg in columns]
                )
            blocks.append(
                format_table(
                    rows, headers=["data"] + columns, float_fmt=".2f", title=title
                )
            )
        return "\n\n".join(blocks)

    def orders_of_magnitude_vs_ucpc(self, dataset: str, algorithm: str) -> float:
        """log10 runtime ratio vs UCPC (positive = slower than UCPC)."""
        ucpc = self.runtimes_ms[(dataset, "UCPC")]
        other = self.runtimes_ms[(dataset, algorithm)]
        return float(np.log10(max(other, 1e-9) / max(ucpc, 1e-9)))


def _load_dataset(
    name: str, config: ExperimentConfig, seed
) -> UncertainDataset:
    """Uncertain dataset for one Figure 4 workload."""
    if name in ("neuroblastoma", "leukaemia"):
        from repro.datagen.microarray import MICROARRAY_SPECS

        scale = config.scale
        if config.max_objects is not None:
            scale = min(
                scale, config.max_objects / MICROARRAY_SPECS[name].n_genes
            )
        return make_microarray(name, scale=scale, mass=config.mass, seed=seed)
    points, labels = make_benchmark(
        name, scale=config.scale, seed=seed, max_objects=config.max_objects
    )
    generator = UncertaintyGenerator(
        family="normal", spread=config.spread, mass=config.mass
    )
    return generator.uncertain_dataset(points, labels, seed=seed)


# ----------------------------------------------------------------------
# Group / cell executors (shared with the sweep orchestrator)
# ----------------------------------------------------------------------
def prepare_figure4_group(
    ds_name: str, ds_rng, config: ExperimentConfig
) -> UncertainDataset:
    """Materialize one Figure 4 dataset group (consumes ``ds_rng``)."""
    return _load_dataset(ds_name, config, ds_rng)


def figure4_roster(
    slow_group: Sequence[str] = SLOW_ROSTER,
    fast_group: Sequence[str] = FAST_ROSTER,
) -> List[str]:
    """The deduplicated run order of one Figure 4 dataset group."""
    return list(dict.fromkeys(list(slow_group) + list(fast_group) + ["UCPC"]))


def run_figure4_cell(
    alg_name: str, dataset: UncertainDataset, k: int, ds_rng, config: ExperimentConfig
) -> float:
    """Mean on-line runtime (ms) of one (dataset, algorithm) cell."""
    algorithm = build_algorithm(
        alg_name, n_clusters=k, n_samples=config.n_samples
    )
    # n_runs + 1 streams: the last seeds the shared tensor (when
    # applicable), keeping ds_rng consumption independent of the engine
    # mode and of the algorithm type.
    streams = spawn_rngs(ds_rng, config.n_runs + 1)
    results = fit_runs(
        algorithm,
        dataset,
        streams[:-1],
        engine=config.engine,
        sample_seed=streams[-1],
        backend=config.backend,
        n_jobs=config.n_jobs,
        batch_size=config.batch_size,
    )
    times = np.array([result.runtime_seconds for result in results])
    return float(times.mean() * 1e3)


def skip_figure4_cell(ds_rng, config: ExperimentConfig) -> None:
    """Replay one cell's ``ds_rng`` consumption without running fits."""
    spawn_rngs(ds_rng, config.n_runs + 1)


def run_figure4(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = FIGURE4_DATASETS,
    slow_group: Sequence[str] = SLOW_ROSTER,
    fast_group: Sequence[str] = FAST_ROSTER,
    n_clusters: int = 10,
) -> Figure4Report:
    """Regenerate Figure 4's runtime comparison at the configured scale.

    Runs execute through :func:`repro.engine.fit_runs` (unless
    ``config.engine`` is off): sample-based algorithms draw one shared
    tensor per (dataset, algorithm) series, matching the paper's
    off-line/on-line accounting — ``runtime_seconds`` only ever times
    the on-line clustering phase.
    """
    config = config or ExperimentConfig(scale=0.02, n_runs=3)
    report = Figure4Report(
        datasets=tuple(datasets),
        slow_group=tuple(slow_group),
        fast_group=tuple(fast_group),
    )
    streams = spawn_rngs(config.seed, len(datasets))
    roster = figure4_roster(slow_group, fast_group)
    for ds_name, ds_rng in zip(datasets, streams):
        dataset = prepare_figure4_group(ds_name, ds_rng, config)
        k = min(n_clusters, len(dataset) - 1)
        for alg_name in roster:
            report.runtimes_ms[(ds_name, alg_name)] = run_figure4_cell(
                alg_name, dataset, k, ds_rng, config
            )
    return report
