"""Experiment configuration and the algorithm rosters of the paper (S23).

The paper evaluates a fixed roster of algorithms per experiment:

* accuracy (Tables 2-3): FDBSCAN, FOPTICS, UAHC, UK-medoids, UK-means,
  MMVar, UCPC;
* efficiency (Figure 4): the above plus basic UK-means, MinMax-BB and
  VDBiP, split into a "slower" and a "faster" group;
* scalability (Figure 5): the fast algorithms only.

Defaults here run paper-*shaped* experiments at laptop scale; pass
``scale=1.0`` and ``n_runs=50`` to match the paper's exact sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.clustering import (
    FDBSCAN,
    FOPTICS,
    MMVar,
    UAHC,
    UCPC,
    BasicUKMeans,
    BoundedUKMeans,
    MiniBatchUKMeans,
    MinMaxBB,
    UKMeans,
    UKMedoids,
    VDBiP,
)
from repro.clustering.base import UncertainClusterer
from repro.exceptions import InvalidParameterError

#: Display order of the accuracy-roster columns (matches Table 2).
ACCURACY_ROSTER = ("FDB", "FOPT", "UAHC", "UKmed", "UKM", "MMV", "UCPC")

#: The "slower" group of Figure 4 (left-hand plots).
SLOW_ROSTER = ("UKmed", "bUKM", "UAHC", "FDB", "FOPT")

#: The "faster" group of Figure 4 (right-hand plots).
FAST_ROSTER = ("UKM", "MMV", "MinMax-BB", "VDBiP")

#: Figure 5 scalability roster.
SCALABILITY_ROSTER = ("UKM", "MMV", "MinMax-BB", "VDBiP", "UCPC")


def build_algorithm(name: str, n_clusters: int, n_samples: int = 32) -> UncertainClusterer:
    """Instantiate a roster algorithm by its paper abbreviation.

    Parameters
    ----------
    name:
        Paper abbreviation (``"UCPC"``, ``"UKM"``, ``"MMV"``, ``"UKmed"``,
        ``"bUKM"``, ``"MinMax-BB"``, ``"VDBiP"``, ``"FDB"``, ``"FOPT"``,
        ``"UAHC"``), or one of the scale-path variants added on top of
        the paper rosters (``"bUKM-EH"`` for bounds-accelerated basic
        UK-means, ``"MB-UKM"`` for mini-batch UK-means).
    n_clusters:
        Desired cluster count (ignored by FDBSCAN, which discovers it).
    n_samples:
        Monte-Carlo samples for the sample-based algorithms.
    """
    factories: Dict[str, Callable[[], UncertainClusterer]] = {
        "UCPC": lambda: UCPC(n_clusters),
        "UKM": lambda: UKMeans(n_clusters),
        "MMV": lambda: MMVar(n_clusters),
        "UKmed": lambda: UKMedoids(n_clusters),
        "bUKM": lambda: BasicUKMeans(n_clusters, n_samples=n_samples),
        "MinMax-BB": lambda: MinMaxBB(n_clusters, n_samples=n_samples),
        "VDBiP": lambda: VDBiP(n_clusters, n_samples=n_samples),
        "FDB": lambda: FDBSCAN(n_samples=n_samples),
        # FOPTICS extracts its flat clustering at the requested cluster
        # count so the F-measure comparison is k-comparable across
        # algorithms (FDBSCAN, which has no ordering to cut, stays free).
        "FOPT": lambda: FOPTICS(n_samples=n_samples, n_clusters=n_clusters),
        "UAHC": lambda: UAHC(n_clusters),
        # Scale-path variants (not on any paper roster): bounds-accelerated
        # basic UK-means (lossless) and mini-batch UK-means (lossy).
        "bUKM-EH": lambda: BoundedUKMeans(n_clusters, n_samples=n_samples),
        "MB-UKM": lambda: MiniBatchUKMeans(n_clusters),
    }
    if name not in factories:
        raise InvalidParameterError(
            f"unknown algorithm {name!r}; known: {sorted(factories)}"
        )
    return factories[name]()


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs of the experiment runners.

    Attributes
    ----------
    scale:
        Fraction of the paper's dataset sizes to generate (1.0 = paper
        scale).
    max_objects:
        Hard cap on benchmark dataset sizes, applied after ``scale``;
        keeps the big benchmarks (Yeast...Letter) laptop-sized while the
        small ones stay at paper scale.  ``None`` disables the cap (use
        with ``scale=1.0`` for full paper-scale runs).
    n_runs:
        Runs averaged per measurement (paper: 50).
    seed:
        Master seed; every (dataset, family, algorithm, run) derives an
        independent stream from it.
    n_samples:
        Monte-Carlo samples for sample-based algorithms.
    spread:
        Uncertainty magnitude for the Section 5.1 generator.
    mass:
        Case-2 region probability mass (paper: 0.95).
    engine:
        Route the per-run fits of every experiment through
        :func:`repro.engine.fit_runs`, sharing one sample tensor and
        the dataset moment cache across runs (except for
        FDBSCAN/FOPTICS, whose only randomness is the draw itself —
        they keep independent per-run tensors so the ``n_runs`` average
        stays a real average).  ``False`` keeps the direct per-fit loop
        (the reference path of the routing equivalence tests); seed
        derivation is identical in both modes, so the moment-based and
        sample-deterministic algorithms produce the same measurements
        either way.
    backend:
        Execution backend for the engine-routed fit series:
        ``"serial"`` (default), ``"threads"``, ``"processes"`` or
        ``"auto"`` — per-algorithm-family dispatch — (see
        :mod:`repro.engine.backends`).  Backends are result-identical
        for fixed seeds, so this knob only changes wall-clock time —
        the paper-scale 50-run protocols are where it pays off.
    n_jobs:
        Worker count for the parallel backends (ignored by
        ``"serial"``).
    batch_size:
        Restarts submitted per pool task (in-worker batching; see
        :class:`repro.engine.MultiRestartRunner`).  Result-identical
        for any value — amortizes pool overhead for sub-ms fits.
        ``"auto"`` sizes chunks adaptively from the measured per-fit
        latency of each series' first completed task.
    """

    scale: float = 1.0
    max_objects: Optional[int] = 600
    n_runs: int = 5
    seed: int = 2012
    n_samples: int = 32
    spread: float = 1.0
    mass: float = 0.95
    engine: bool = True
    backend: str = "serial"
    n_jobs: int = 1
    batch_size: "int | str" = 1

    def __post_init__(self) -> None:
        from repro.engine.backends import BACKEND_NAMES, validate_batch_size

        if not (0.0 < self.scale <= 1.0):
            raise InvalidParameterError(f"scale must be in (0, 1], got {self.scale}")
        if self.max_objects is not None and self.max_objects < 1:
            raise InvalidParameterError(
                f"max_objects must be >= 1, got {self.max_objects}"
            )
        if self.n_runs < 1:
            raise InvalidParameterError(f"n_runs must be >= 1, got {self.n_runs}")
        if self.backend not in BACKEND_NAMES:
            raise InvalidParameterError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {self.n_jobs}")
        validate_batch_size(self.batch_size)
