"""Table 2 — accuracy on benchmark datasets (E1).

For every benchmark dataset and pdf family (Uniform / Normal /
Exponential), every roster algorithm is pushed through the paired
Case-1/Case-2 protocol of Section 5.1 and scored with

* ``Theta = F(C'') - F(C')`` (external criterion), and
* ``Q = inter - intra`` of the Case-2 clustering (internal criterion),

averaged over ``n_runs`` runs.  The report reproduces the paper's table
layout: one row per (dataset, pdf), per-family average scores, overall
average scores, and the overall average *gain* of UCPC over every
competitor — the headline numbers of the paper (+.509 ... +.115 on
Theta; +.228 ... +.027 on Q).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.benchmarks import make_benchmark
from repro.datagen.uncertainty_gen import (
    PDF_FAMILIES,
    UncertainDataPair,
    UncertaintyGenerator,
)
from repro.evaluation.protocol import evaluate_theta_multirun, multirun_stream_plan
from repro.experiments.config import ACCURACY_ROSTER, ExperimentConfig, build_algorithm
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_table

#: Default datasets of Table 2 (KDDCup99 is scalability-only in the paper).
TABLE2_DATASETS = (
    "iris",
    "wine",
    "glass",
    "ecoli",
    "yeast",
    "image",
    "abalone",
    "letter",
)


@dataclass
class Table2Cell:
    """One (dataset, pdf, algorithm) measurement."""

    theta: float
    quality: float


@dataclass
class Table2Report:
    """All Table 2 measurements plus the paper's aggregate rows."""

    datasets: Tuple[str, ...]
    families: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    cells: Dict[Tuple[str, str, str], Table2Cell] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Aggregates (the paper's "average score" / "overall average" rows)
    # ------------------------------------------------------------------
    def average_score(self, family: str, algorithm: str, metric: str) -> float:
        """Per-family average over datasets (paper's "avg score" rows)."""
        values = [
            getattr(self.cells[(ds, family, algorithm)], metric)
            for ds in self.datasets
        ]
        return float(np.mean(values))

    def overall_average(self, algorithm: str, metric: str) -> float:
        """Average over all datasets and families."""
        values = [
            getattr(self.cells[(ds, fam, algorithm)], metric)
            for ds in self.datasets
            for fam in self.families
        ]
        return float(np.mean(values))

    def overall_gain(self, algorithm: str, metric: str) -> float:
        """UCPC's overall average minus ``algorithm``'s (paper's last row)."""
        return self.overall_average("UCPC", metric) - self.overall_average(
            algorithm, metric
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, metric: str = "theta") -> str:
        """Monospace table in the paper's layout for one metric."""
        titles = {"theta": "F-measure (Theta)", "quality": "Quality (Q)"}
        rows: List[Sequence[object]] = []
        family_tag = {"uniform": "U", "normal": "N", "exponential": "E"}
        for ds in self.datasets:
            for fam in self.families:
                row: List[object] = [ds, family_tag.get(fam, fam)]
                row.extend(
                    getattr(self.cells[(ds, fam, alg)], metric)
                    for alg in self.algorithms
                )
                rows.append(row)
        for fam in self.families:
            row = ["avg score", family_tag.get(fam, fam)]
            row.extend(
                self.average_score(fam, alg, metric) for alg in self.algorithms
            )
            rows.append(row)
        rows.append(
            ["overall avg", ""]
            + [self.overall_average(alg, metric) for alg in self.algorithms]
        )
        rows.append(
            ["overall gain", ""]
            + [
                None if alg == "UCPC" else self.overall_gain(alg, metric)
                for alg in self.algorithms
            ]
        )
        headers = ["data", "pdf"] + list(self.algorithms)
        return format_table(rows, headers=headers, title=f"Table 2 — {titles[metric]}")


# ----------------------------------------------------------------------
# Group / cell executors (shared with the sweep orchestrator)
# ----------------------------------------------------------------------
def prepare_table2_group(
    ds_name: str, family: str, rng, config: ExperimentConfig
) -> Tuple[UncertainDataPair, int]:
    """Materialize one (dataset, family) group: the paired datasets.

    Consumes ``rng`` exactly as :func:`run_table2` always did (benchmark
    generation, then uncertainty injection), so the sweep orchestrator
    and the direct runner derive bit-identical per-cell streams.
    """
    points, labels = make_benchmark(
        ds_name,
        scale=config.scale,
        seed=rng,
        max_objects=config.max_objects,
    )
    generator = UncertaintyGenerator(
        family=family, spread=config.spread, mass=config.mass
    )
    pair = generator.generate(points, labels, seed=rng)
    n_classes = int(np.unique(labels).size)
    return pair, n_classes


def run_table2_cell(
    alg_name: str,
    pair: UncertainDataPair,
    n_classes: int,
    rng,
    config: ExperimentConfig,
    distances: np.ndarray,
) -> Table2Cell:
    """One (dataset, family, algorithm) measurement of Table 2."""
    algorithm = build_algorithm(
        alg_name, n_clusters=n_classes, n_samples=config.n_samples
    )
    outcome = evaluate_theta_multirun(
        algorithm,
        pair,
        n_runs=config.n_runs,
        seed=rng,
        distances=distances,
        engine=config.engine,
        backend=config.backend,
        n_jobs=config.n_jobs,
        batch_size=config.batch_size,
    )
    return Table2Cell(theta=outcome.theta_mean, quality=outcome.quality_mean)


def skip_table2_cell(rng, config: ExperimentConfig) -> None:
    """Replay one cell's seed consumption without running its fits.

    The sweep's resume path calls this for completed cells so that the
    group stream reaches every later cell in exactly the state the
    uninterrupted run would have produced.
    """
    multirun_stream_plan(rng, config.n_runs)


def run_table2(
    config: Optional[ExperimentConfig] = None,
    datasets: Sequence[str] = TABLE2_DATASETS,
    families: Sequence[str] = PDF_FAMILIES,
    algorithms: Sequence[str] = ACCURACY_ROSTER,
) -> Table2Report:
    """Regenerate Table 2 at the configured scale.

    One uncertainty-generation per (dataset, family) — shared by all
    algorithms, exactly as in the paper — then ``config.n_runs``
    clustering runs per algorithm.
    """
    config = config or ExperimentConfig()
    report = Table2Report(
        datasets=tuple(datasets),
        families=tuple(families),
        algorithms=tuple(algorithms),
    )
    master_streams = spawn_rngs(config.seed, len(datasets) * len(families))
    stream_idx = 0
    for ds_name in datasets:
        for family in families:
            rng = master_streams[stream_idx]
            stream_idx += 1
            pair, n_classes = prepare_table2_group(ds_name, family, rng, config)
            # The dataset-cached plane: the same matrix scores every
            # algorithm's internal criterion *and* feeds UK-medoids'
            # fits (threaded through evaluate_theta_multirun).
            distances = pair.uncertain.pairwise_ed()
            for alg_name in algorithms:
                report.cells[(ds_name, family, alg_name)] = run_table2_cell(
                    alg_name, pair, n_classes, rng, config, distances
                )
    return report
