"""Programmatic checks of the paper's qualitative result *shapes*.

A reproduction on substituted data cannot match absolute numbers; what
it must preserve are orderings and growth shapes.  This module encodes
those claims as named predicates over the experiment reports so they can
be asserted in CI (``tests/test_paper_shapes.py`` runs them at reduced
scale) and printed alongside any regenerated report.

Each check returns a :class:`ShapeCheck` rather than raising, so a
report can show partial conformance honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.figure4 import Figure4Report
from repro.experiments.figure5 import Figure5Report
from repro.experiments.table2 import Table2Report
from repro.experiments.table3 import Table3Report


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one qualitative-claim check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def check_ucpc_beats_ukmeans_theta(report: Table2Report) -> ShapeCheck:
    """Paper: UCPC achieved better Theta than UK-means (all configs; we
    require the overall average)."""
    gain = report.overall_gain("UKM", "theta")
    return ShapeCheck(
        name="UCPC > UK-means on overall Theta",
        passed=gain > 0,
        detail=f"overall gain {gain:+.3f}",
    )


def check_ucpc_quality_competitive(report: Table2Report) -> ShapeCheck:
    """Paper: UCPC best overall Q; we require within 0.02 of the best
    *partitional* competitor (UKM, UKmed, MMV)."""
    ucpc = report.overall_average("UCPC", "quality")
    rivals = {
        alg: report.overall_average(alg, "quality")
        for alg in ("UKM", "UKmed", "MMV")
        if alg in report.algorithms
    }
    best_rival = max(rivals.values())
    return ShapeCheck(
        name="UCPC Q at/near the top of the partitional field",
        passed=ucpc >= best_rival - 0.02,
        detail=f"UCPC {ucpc:.3f} vs best partitional rival {best_rival:.3f}",
    )


def check_density_methods_weak_theta(report: Table2Report) -> ShapeCheck:
    """Paper: FDBSCAN/FOPTICS Theta <= 0 overall; we require both to sit
    below UCPC."""
    ucpc = report.overall_average("UCPC", "theta")
    values = {
        alg: report.overall_average(alg, "theta")
        for alg in ("FDB", "FOPT")
        if alg in report.algorithms
    }
    passed = all(v < ucpc for v in values.values())
    detail = ", ".join(f"{a} {v:+.3f}" for a, v in values.items())
    return ShapeCheck(
        name="density methods below UCPC on Theta",
        passed=passed,
        detail=f"UCPC {ucpc:+.3f} vs {detail}",
    )


# ----------------------------------------------------------------------
# Table 3
# ----------------------------------------------------------------------
def check_ucpc_beats_mmvar_quality(report: Table3Report) -> ShapeCheck:
    """Paper: UCPC better than MMVar on all 16 Table 3 configurations;
    we require the overall average."""
    gain = report.overall_gain("MMV")
    return ShapeCheck(
        name="UCPC > MMVar on microarray Q",
        passed=gain > 0,
        detail=f"overall gain {gain:+.3f}",
    )


def check_uahc_strong_at_large_k(report: Table3Report) -> ShapeCheck:
    """Paper: UAHC competitive on Neuroblastoma; we check its average Q
    over the largest half of the cluster counts beats its own average at
    the smallest half (the paper's 'UAHC improves with k' pattern)."""
    ks = sorted(report.cluster_counts)
    if "UAHC" not in report.algorithms or len(ks) < 2:
        return ShapeCheck("UAHC improves with k", True, "not applicable")
    half = len(ks) // 2
    dataset = report.datasets[0]
    small = sum(report.quality[(dataset, k, "UAHC")] for k in ks[:half]) / half
    large = sum(report.quality[(dataset, k, "UAHC")] for k in ks[-half:]) / half
    return ShapeCheck(
        name="UAHC improves with k on the first dataset",
        passed=large >= small,
        detail=f"avg Q small-k {small:.3f} vs large-k {large:.3f}",
    )


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
def check_ucpc_same_order_as_fast_group(report: Figure4Report) -> ShapeCheck:
    """Paper: UCPC within the same order of magnitude as UK-means and
    MMVar on every dataset."""
    worst = 0.0
    for ds in report.datasets:
        for alg in ("UKM", "MMV"):
            if alg in report.fast_group:
                worst = max(
                    worst, abs(report.orders_of_magnitude_vs_ucpc(ds, alg))
                )
    return ShapeCheck(
        name="UCPC within ~1 order of magnitude of UKM/MMVar",
        passed=worst <= 1.6,
        detail=f"max |log10 ratio| {worst:.2f}",
    )


def check_slow_group_slower_at_scale(report: Figure4Report) -> ShapeCheck:
    """Paper: bUKM/UAHC/FDB/FOPT slower than UCPC (orders of magnitude at
    full scale); we require them slower on the largest dataset measured.
    UK-medoids is exempt: its O(n^2) phase is off-line by the paper's
    own accounting."""
    largest = report.datasets[-1]
    offenders = []
    for alg in report.slow_group:
        if alg == "UKmed":
            continue
        if report.runtimes_ms[(largest, alg)] <= report.runtimes_ms[
            (largest, "UCPC")
        ] * 0.8:
            offenders.append(alg)
    return ShapeCheck(
        name="slow group above UCPC on the largest dataset",
        passed=not offenders,
        detail="offenders: " + (", ".join(offenders) if offenders else "none"),
    )


def check_pruning_between_bukm_and_ukm(report: Figure4Report) -> ShapeCheck:
    """Paper: MinMax-BB/VDBiP significantly faster than basic UK-means,
    slower than fast UK-means."""
    ok = True
    details = []
    for ds in report.datasets:
        bukm = report.runtimes_ms.get((ds, "bUKM"))
        ukm = report.runtimes_ms.get((ds, "UKM"))
        if bukm is None or ukm is None:
            continue
        for alg in ("MinMax-BB", "VDBiP"):
            value = report.runtimes_ms.get((ds, alg))
            if value is None:
                continue
            if not (ukm * 0.5 <= value <= bukm * 1.5):
                ok = False
                details.append(f"{ds}/{alg}={value:.1f}ms")
    return ShapeCheck(
        name="pruning variants between UKM and bUKM",
        passed=ok,
        detail="violations: " + (", ".join(details) if details else "none"),
    )


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def check_linear_scalability(report: Figure5Report, min_r2: float = 0.95) -> ShapeCheck:
    """Paper: all fast algorithms exhibit linear trends in n."""
    worst = min(report.linearity_r2(alg) for alg in report.algorithms)
    return ShapeCheck(
        name="linear scalability of the fast algorithms",
        passed=worst >= min_r2,
        detail=f"min R^2 {worst:.3f}",
    )


def run_all_checks(
    table2: Table2Report,
    table3: Table3Report,
    figure4: Figure4Report,
    figure5: Figure5Report,
) -> List[ShapeCheck]:
    """Every shape check against a full set of regenerated artifacts."""
    return [
        check_ucpc_beats_ukmeans_theta(table2),
        check_ucpc_quality_competitive(table2),
        check_density_methods_weak_theta(table2),
        check_ucpc_beats_mmvar_quality(table3),
        check_uahc_strong_at_large_k(table3),
        check_ucpc_same_order_as_fast_group(figure4),
        check_slow_group_slower_at_scale(figure4),
        check_pruning_between_bukm_and_ukm(figure4),
        check_linear_scalability(figure5),
    ]
