"""Markdown reporting: turn experiment reports into an EXPERIMENTS.md body.

``write_experiments_report`` runs (or accepts) the four paper artifacts
and renders one self-contained markdown document recording measured
values next to the paper's headline claims — the file shipped as
EXPERIMENTS.md is generated this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.experiments.config import ExperimentConfig
from repro.experiments.figure4 import Figure4Report, run_figure4
from repro.experiments.figure5 import Figure5Report, run_figure5
from repro.experiments.table2 import Table2Report, run_table2
from repro.experiments.table3 import Table3Report, run_table3


@dataclass
class PaperArtifacts:
    """The four regenerated evaluation artifacts."""

    table2: Table2Report
    table3: Table3Report
    figure4: Figure4Report
    figure5: Figure5Report


def collect_artifacts(
    table2_config: Optional[ExperimentConfig] = None,
    table3_config: Optional[ExperimentConfig] = None,
    figure4_config: Optional[ExperimentConfig] = None,
    figure5_config: Optional[ExperimentConfig] = None,
    figure5_base_size: int = 20000,
    store: Optional[Union[str, Path]] = None,
    resume: bool = False,
    store_backend: Optional[str] = None,
) -> PaperArtifacts:
    """Run all four experiment suites with the given configurations.

    With ``store`` set, the four suites execute through the sweep
    orchestrator (:func:`repro.engine.sweep.run_sweep`) instead of four
    isolated runner calls: per-dataset caches are shared across the
    whole grid, every cell lands in the resumable result store at
    ``store``, and ``resume=True`` reuses completed cells from an
    earlier (possibly interrupted) invocation.  Cell values are
    identical in both modes — the orchestrator runs the runners' own
    group/cell executors.

    The store's backend resolves from the path (a directory means the
    JSON layout, a ``.sqlite`` file the SQLite backend) unless pinned
    via ``store_backend``; the artifacts are value-identical on either,
    and on SQLite the completed-cell reads run as indexed SQL.
    """
    if store is not None:
        from repro.engine.sweep import paper_grid, run_sweep

        grid = paper_grid(
            table2_config=table2_config,
            table3_config=table3_config,
            figure4_config=figure4_config,
            figure5_config=figure5_config,
            figure5_base_size=figure5_base_size,
        )
        return run_sweep(
            grid, store, resume=resume, store_backend=store_backend
        ).artifacts()
    return PaperArtifacts(
        table2=run_table2(table2_config),
        table3=run_table3(table3_config),
        figure4=run_figure4(figure4_config),
        figure5=run_figure5(figure5_config, base_size=figure5_base_size),
    )


def render_markdown(artifacts: PaperArtifacts, preamble: str = "") -> str:
    """Render the artifacts as a markdown report body."""
    t2 = artifacts.table2
    t3 = artifacts.table3
    f4 = artifacts.figure4
    f5 = artifacts.figure5

    sections = []
    if preamble:
        sections.append(preamble.rstrip())

    sections.append("## Table 2 — accuracy on benchmark datasets\n")
    sections.append("```\n" + t2.render("theta") + "\n```\n")
    sections.append("```\n" + t2.render("quality") + "\n```\n")
    gains_theta = {
        alg: t2.overall_gain(alg, "theta")
        for alg in t2.algorithms
        if alg != "UCPC"
    }
    gains_q = {
        alg: t2.overall_gain(alg, "quality")
        for alg in t2.algorithms
        if alg != "UCPC"
    }
    sections.append(
        "Measured overall UCPC gains — Theta: "
        + ", ".join(f"{a}: {g:+.3f}" for a, g in gains_theta.items())
        + "; Q: "
        + ", ".join(f"{a}: {g:+.3f}" for a, g in gains_q.items())
        + "\n"
    )

    sections.append("## Table 3 — Q on microarray stand-ins\n")
    sections.append("```\n" + t3.render() + "\n```\n")

    sections.append("## Figure 4 — efficiency\n")
    sections.append("```\n" + f4.render() + "\n```\n")
    oom_lines = []
    for ds in f4.datasets:
        for alg in f4.slow_group:
            oom = f4.orders_of_magnitude_vs_ucpc(ds, alg)
            oom_lines.append(f"{ds}/{alg}: {oom:+.1f}")
    sections.append(
        "Orders of magnitude vs UCPC (log10, positive = slower): "
        + ", ".join(oom_lines)
        + "\n"
    )

    sections.append("## Figure 5 — scalability\n")
    sections.append("```\n" + f5.render() + "\n```\n")
    r2_lines = ", ".join(
        f"{alg}: {f5.linearity_r2(alg):.3f}" for alg in f5.algorithms
    )
    sections.append(f"Linear-fit R² per algorithm: {r2_lines}\n")

    return "\n".join(sections) + "\n"


def write_experiments_report(
    path: Union[str, Path],
    artifacts: PaperArtifacts,
    preamble: str = "",
) -> Path:
    """Render ``artifacts`` to markdown and write them to ``path``."""
    path = Path(path)
    path.write_text(render_markdown(artifacts, preamble))
    return path
