"""Figure 5 — scalability on the KDD Cup '99 workload (E4).

The paper varies the KDD Cup '99 dataset size from 5% to 100% (4M
objects, 42 attributes, k fixed at 23 — every class kept represented in
each subset) and times the fast algorithms.  Expected shape: all
algorithms linear in n, MMVar scaling best, UCPC tracking UK-means.

This runner synthesizes the KDD-shaped dataset once at a base size, then
takes stratified fractions exactly as the paper does.  A linearity
diagnostic (R^2 of the least-squares line through each algorithm's
(n, time) series) quantifies the "linear trend" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.benchmarks import make_benchmark
from repro.datagen.uncertainty_gen import UncertaintyGenerator
from repro.engine import fit_runs
from repro.experiments.config import (
    SCALABILITY_ROSTER,
    ExperimentConfig,
    build_algorithm,
)
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_table

#: Dataset fractions of Figure 5.
FIGURE5_FRACTIONS = (0.05, 0.25, 0.5, 0.75, 1.0)

#: Cluster count fixed by the paper (the 23 KDD Cup classes).
FIGURE5_K = 23


@dataclass
class Figure5Report:
    """Runtimes (ms) per (fraction, algorithm) plus linearity diagnostics."""

    fractions: Tuple[float, ...]
    algorithms: Tuple[str, ...]
    sizes: Dict[float, int] = field(default_factory=dict)
    runtimes_ms: Dict[Tuple[float, str], float] = field(default_factory=dict)

    def linearity_r2(self, algorithm: str) -> float:
        """R^2 of the least-squares line through (n, runtime)."""
        x = np.array([self.sizes[f] for f in self.fractions], dtype=np.float64)
        y = np.array(
            [self.runtimes_ms[(f, algorithm)] for f in self.fractions]
        )
        if x.size < 2:
            return 1.0
        slope, intercept = np.polyfit(x, y, 1)
        predicted = slope * x + intercept
        ss_res = float(((y - predicted) ** 2).sum())
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            return 1.0
        return 1.0 - ss_res / ss_tot

    def render(self) -> str:
        """Monospace table of the scalability series."""
        rows: List[Sequence[object]] = []
        for frac in self.fractions:
            row: List[object] = [f"{frac:.0%}", self.sizes[frac]]
            row.extend(self.runtimes_ms[(frac, alg)] for alg in self.algorithms)
            rows.append(row)
        rows.append(
            ["linearity R^2", ""]
            + [self.linearity_r2(alg) for alg in self.algorithms]
        )
        headers = ["fraction", "n"] + list(self.algorithms)
        return format_table(
            rows,
            headers=headers,
            float_fmt=".2f",
            title="Figure 5 — scalability on KDD Cup '99 workload [ms]",
        )


# ----------------------------------------------------------------------
# Group / cell executors (shared with the sweep orchestrator)
# ----------------------------------------------------------------------
def prepare_figure5_base(config: ExperimentConfig, base_size: int):
    """The full KDD-shaped dataset plus the two master streams.

    Returns ``(full, rng_data, rng_runs)``; ``rng_data`` is consumed
    further by each fraction's stratified subset draw, ``rng_runs`` by
    each cell — both statefully, so the sweep replays this sequence in
    full whenever any Figure 5 cell is pending.
    """
    rng_data, rng_runs = spawn_rngs(config.seed, 2)
    scale = min(1.0, base_size / 4_000_000)
    points, labels = make_benchmark("kddcup99", scale=scale, seed=rng_data)
    generator = UncertaintyGenerator(
        family="normal", spread=config.spread, mass=config.mass
    )
    full = generator.uncertain_dataset(points, labels, seed=rng_data)
    return full, rng_data, rng_runs


def prepare_figure5_fraction(full, frac: float, rng_data):
    """One fraction's stratified subset (consumes ``rng_data``)."""
    return full.sample_fraction(frac, seed=rng_data, stratified=True)


def run_figure5_cell(
    alg_name: str, subset, k: int, rng_runs, config: ExperimentConfig
) -> float:
    """Mean on-line runtime (ms) of one (fraction, algorithm) cell."""
    algorithm = build_algorithm(
        alg_name, n_clusters=k, n_samples=config.n_samples
    )
    # n_runs + 1 streams: the last seeds the shared tensor (when
    # applicable), keeping rng_runs consumption independent of the
    # engine mode and of the algorithm type.
    streams = spawn_rngs(rng_runs, config.n_runs + 1)
    results = fit_runs(
        algorithm,
        subset,
        streams[:-1],
        engine=config.engine,
        sample_seed=streams[-1],
        backend=config.backend,
        n_jobs=config.n_jobs,
        batch_size=config.batch_size,
    )
    times = np.array([result.runtime_seconds for result in results])
    return float(times.mean() * 1e3)


def skip_figure5_cell(rng_runs, config: ExperimentConfig) -> None:
    """Replay one cell's ``rng_runs`` consumption without running fits."""
    spawn_rngs(rng_runs, config.n_runs + 1)


def run_figure5(
    config: Optional[ExperimentConfig] = None,
    fractions: Sequence[float] = FIGURE5_FRACTIONS,
    algorithms: Sequence[str] = SCALABILITY_ROSTER,
    base_size: int = 20000,
) -> Figure5Report:
    """Regenerate Figure 5 at a configurable base size.

    Parameters
    ----------
    base_size:
        Object count of the 100% fraction (paper: 4,000,000; default
        20,000 keeps the sweep under a minute — linearity and algorithm
        ordering are visible at any scale).
    """
    config = config or ExperimentConfig(n_runs=3)
    report = Figure5Report(
        fractions=tuple(fractions), algorithms=tuple(algorithms)
    )
    full, rng_data, rng_runs = prepare_figure5_base(config, base_size)

    for frac in fractions:
        subset = prepare_figure5_fraction(full, frac, rng_data)
        report.sizes[frac] = len(subset)
        k = min(FIGURE5_K, len(subset) - 1)
        for alg_name in algorithms:
            report.runtimes_ms[(frac, alg_name)] = run_figure5_cell(
                alg_name, subset, k, rng_runs, config
            )
    return report
