"""Moving-objects workload — the paper's second motivating domain.

The introduction cites moving objects [19]: positions "can only be
estimated when there is a certain latency in communicating the position
(i.e., data is inherently obsolete)".  This generator simulates a fleet
of objects moving around latent activity hubs and reporting positions
with per-object *staleness*: the uncertainty region of an object grows
with the time since its last report and its speed — exactly the classic
Trajcevski-style uncertainty disk, approximated here by its bounding box
with a uniform or Gaussian pdf.

Objects are labeled by their hub, giving the external criterion a ground
truth; staleness varies per object, so variances are genuinely
heterogeneous — the regime the U-centroid was designed for.
"""

from __future__ import annotations


import numpy as np

from repro._typing import SeedLike
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject
from repro.utils.rng import ensure_rng


def make_moving_objects(
    n_objects: int = 300,
    n_hubs: int = 4,
    area_size: float = 100.0,
    hub_radius: float = 8.0,
    max_speed: float = 5.0,
    max_staleness: float = 4.0,
    pdf: str = "uniform",
    mass: float = 0.95,
    seed: SeedLike = None,
) -> UncertainDataset:
    """Fleet of moving objects with staleness-dependent position uncertainty.

    Parameters
    ----------
    n_objects:
        Fleet size.
    n_hubs:
        Latent activity hubs (the reference classes).
    area_size:
        Side of the square operating area.
    hub_radius:
        Spread of object true positions around their hub.
    max_speed:
        Maximum object speed; the uncertainty half-width of an object is
        ``speed * staleness`` (it can have moved that far since its last
        report).
    max_staleness:
        Maximum time since last report, drawn uniformly per object.
    pdf:
        ``"uniform"`` — uniform over the reachability box (the classical
        worst-case model); ``"normal"`` — truncated Gaussian centered on
        the last report (a random-walk model).
    mass:
        Region probability mass for the Gaussian variant.

    Returns
    -------
    UncertainDataset
        One uncertain object per fleet member, labeled by hub.
    """
    if n_objects < 2 * n_hubs:
        raise InvalidParameterError(
            f"need n_objects >= 2*n_hubs, got {n_objects} < {2 * n_hubs}"
        )
    if pdf not in ("uniform", "normal"):
        raise InvalidParameterError(f"pdf must be 'uniform' or 'normal', got {pdf!r}")
    for name, value in (
        ("area_size", area_size),
        ("hub_radius", hub_radius),
        ("max_speed", max_speed),
        ("max_staleness", max_staleness),
    ):
        if value <= 0:
            raise InvalidParameterError(f"{name} must be > 0, got {value}")
    rng = ensure_rng(seed)

    hubs = rng.uniform(0.2 * area_size, 0.8 * area_size, size=(n_hubs, 2))
    labels = rng.integers(0, n_hubs, size=n_objects)
    labels[: n_hubs * 2] = np.repeat(np.arange(n_hubs), 2)

    positions = hubs[labels] + rng.normal(0.0, hub_radius, size=(n_objects, 2))
    speeds = rng.uniform(0.2, 1.0, size=n_objects) * max_speed
    staleness = rng.uniform(0.1, 1.0, size=n_objects) * max_staleness
    reach = speeds * staleness  # how far it may have strayed

    objects = []
    for i in range(n_objects):
        half = np.full(2, reach[i])
        if pdf == "uniform":
            obj = UncertainObject.uniform_box(
                positions[i], half, label=int(labels[i])
            )
        else:
            # Random-walk dispersion: std grows with sqrt(staleness).
            std = np.full(2, speeds[i] * np.sqrt(staleness[i]))
            obj = UncertainObject.gaussian(
                positions[i], std, mass=mass, label=int(labels[i])
            )
        objects.append(obj)
    return UncertainDataset(objects)
