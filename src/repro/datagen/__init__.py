"""Dataset synthesis (S20-S22): benchmarks, microarray, uncertainty generation."""

from repro.datagen.benchmarks import (
    BENCHMARK_SPECS,
    BenchmarkSpec,
    list_benchmarks,
    make_benchmark,
    make_blobs_uncertain,
    make_classification_like,
)
from repro.datagen.microarray import (
    MICROARRAY_SPECS,
    MicroarraySpec,
    list_microarrays,
    make_microarray,
    make_probe_level_dataset,
)
from repro.datagen.moving_objects import make_moving_objects
from repro.datagen.uncertainty_gen import (
    PDF_FAMILIES,
    UncertainDataPair,
    UncertaintyGenerator,
)

__all__ = [
    "BENCHMARK_SPECS",
    "BenchmarkSpec",
    "list_benchmarks",
    "make_benchmark",
    "make_blobs_uncertain",
    "make_classification_like",
    "MICROARRAY_SPECS",
    "MicroarraySpec",
    "list_microarrays",
    "make_microarray",
    "make_probe_level_dataset",
    "make_moving_objects",
    "PDF_FAMILIES",
    "UncertainDataPair",
    "UncertaintyGenerator",
]
