"""Synthetic stand-ins for the paper's benchmark datasets (S20).

The paper evaluates on eight UCI datasets plus KDD Cup '99 (Table 1-(a)).
Those files are not redistributable here (no network access), and the
paper's uncertainty is *synthetically generated on top of them* anyway —
what the Θ/Q experiments actually exercise is the datasets' class
geometry (size, dimensionality, number of classes, degree of class
overlap).  This module synthesizes Gaussian-mixture datasets that
reproduce each benchmark's ``(n, m, #classes)`` shape from Table 1 with
a per-dataset separation level calibrated so easy benchmarks (Iris)
cluster well and hard ones (Yeast, Abalone) do not — the substitution is
documented in DESIGN.md §4.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class BenchmarkSpec:
    """Shape parameters of one benchmark dataset (mirrors Table 1-(a)).

    Attributes
    ----------
    name:
        Dataset name as used in the paper.
    n_objects, n_attributes, n_classes:
        The columns of Table 1-(a).
    separation:
        Class-center spread in units of within-class standard deviation;
        lower values produce harder (more overlapping) datasets.
    imbalance:
        Dirichlet concentration for class sizes; large = balanced.
    """

    name: str
    n_objects: int
    n_attributes: int
    n_classes: int
    separation: float
    imbalance: float = 8.0


#: Registry reproducing Table 1-(a) of the paper.  Separations are
#: calibrated so the deterministic baseline difficulty ordering matches
#: the relative accuracy levels observable in the paper's Table 2.
BENCHMARK_SPECS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec("iris", 150, 4, 3, separation=3.4),
        BenchmarkSpec("wine", 178, 13, 3, separation=2.6),
        BenchmarkSpec("glass", 214, 10, 6, separation=1.9, imbalance=2.0),
        BenchmarkSpec("ecoli", 327, 7, 5, separation=2.4, imbalance=2.0),
        BenchmarkSpec("yeast", 1484, 8, 10, separation=1.4, imbalance=1.5),
        BenchmarkSpec("image", 2310, 19, 7, separation=2.8),
        BenchmarkSpec("abalone", 4124, 7, 17, separation=1.1, imbalance=2.0),
        BenchmarkSpec("letter", 7648, 16, 10, separation=2.0),
        BenchmarkSpec("kddcup99", 4_000_000, 42, 23, separation=3.0, imbalance=0.7),
    )
}


def list_benchmarks() -> Tuple[str, ...]:
    """Names of all registered benchmark stand-ins."""
    return tuple(BENCHMARK_SPECS)


def make_benchmark(
    name: str,
    scale: float = 1.0,
    seed: SeedLike = None,
    max_objects: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic points + labels for a named benchmark stand-in.

    Parameters
    ----------
    name:
        One of :func:`list_benchmarks` (case-insensitive).
    scale:
        Fraction of the paper's object count to generate.  Every class
        keeps at least 2 objects.
    max_objects:
        Optional hard cap on the object count, applied after ``scale``.
        The experiment runners use this to keep the large benchmarks
        laptop-sized while leaving small ones (Iris, Wine) at paper
        scale.
    seed:
        Reproducibility seed.

    Returns
    -------
    (points, labels):
        ``points`` is ``(n, m)`` float64, ``labels`` ``(n,)`` int64.
    """
    key = name.lower()
    if key not in BENCHMARK_SPECS:
        raise InvalidParameterError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARK_SPECS)}"
        )
    if not (0.0 < scale <= 1.0):
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    if max_objects is not None and max_objects < 1:
        raise InvalidParameterError(
            f"max_objects must be >= 1, got {max_objects}"
        )
    spec = BENCHMARK_SPECS[key]
    n = max(spec.n_classes * 2, int(round(spec.n_objects * scale)))
    if max_objects is not None:
        n = max(spec.n_classes * 2, min(n, max_objects))
    return make_classification_like(
        n_objects=n,
        n_attributes=spec.n_attributes,
        n_classes=spec.n_classes,
        separation=spec.separation,
        imbalance=spec.imbalance,
        seed=seed,
    )


def make_classification_like(
    n_objects: int,
    n_attributes: int,
    n_classes: int,
    separation: float = 2.5,
    imbalance: float = 8.0,
    lobes: int = 2,
    outlier_rate: float = 0.03,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic classification dataset with realistic class geometry.

    Each class is an anisotropic *multi-lobe* mixture (sub-centers
    scattered around a class center drawn from ``N(0, separation^2 I)``)
    contaminated with a small fraction of outlier objects scattered over
    the data span — the non-Gaussian, imperfect class shapes typical of
    the UCI benchmarks this generator stands in for.  ``lobes=1,
    outlier_rate=0`` recovers clean Gaussian blobs.

    Parameters
    ----------
    separation:
        Class-center spread in units of within-class std: the overlap
        knob.
    imbalance:
        Dirichlet concentration for class sizes (large = balanced);
        every class keeps at least two objects.
    lobes:
        Sub-components per class.
    outlier_rate:
        Fraction of each class replaced by broad-scatter outliers
        (kept labeled with their class, as real mislabeled points are).
    """
    if n_classes < 1:
        raise InvalidParameterError(f"n_classes must be >= 1, got {n_classes}")
    if n_objects < 2 * n_classes:
        raise InvalidParameterError(
            f"need n_objects >= 2*n_classes, got n={n_objects}, k={n_classes}"
        )
    if n_attributes < 1:
        raise InvalidParameterError(
            f"n_attributes must be >= 1, got {n_attributes}"
        )
    if separation <= 0:
        raise InvalidParameterError(f"separation must be > 0, got {separation}")
    if lobes < 1:
        raise InvalidParameterError(f"lobes must be >= 1, got {lobes}")
    if not (0.0 <= outlier_rate < 1.0):
        raise InvalidParameterError(
            f"outlier_rate must be in [0, 1), got {outlier_rate}"
        )
    rng = ensure_rng(seed)

    # Class sizes: Dirichlet split with a floor of 2 per class.
    proportions = rng.dirichlet(np.full(n_classes, imbalance))
    sizes = np.maximum(2, np.round(proportions * n_objects).astype(int))
    while sizes.sum() > n_objects:
        sizes[int(np.argmax(sizes))] -= 1
    while sizes.sum() < n_objects:
        sizes[int(np.argmin(sizes))] += 1

    centers = rng.normal(0.0, separation, size=(n_classes, n_attributes))

    points = np.empty((n_objects, n_attributes))
    labels = np.empty(n_objects, dtype=np.int64)
    cursor = 0
    # Single-lobe classes are clean Gaussian blobs: no sub-center jitter
    # and a tighter std range.
    jitter = 1.2 if lobes > 1 else 0.0
    std_low, std_high = (0.4, 1.6) if lobes > 1 else (0.6, 1.4)
    for cls in range(n_classes):
        size = int(sizes[cls])
        sub_centers = centers[cls] + rng.normal(
            0.0, jitter, size=(lobes, n_attributes)
        )
        sub_stds = rng.uniform(std_low, std_high, size=(lobes, n_attributes))
        chosen = rng.integers(0, lobes, size=size)
        samples = rng.normal(sub_centers[chosen], sub_stds[chosen])
        n_outliers = int(round(outlier_rate * size))
        if n_outliers:
            victim = rng.choice(size, n_outliers, replace=False)
            samples[victim] = rng.normal(
                0.0, 1.5 * separation, size=(n_outliers, n_attributes)
            )
        points[cursor : cursor + size] = samples
        labels[cursor : cursor + size] = cls
        cursor += size
    order = rng.permutation(n_objects)
    return points[order], labels[order]


def make_blobs_uncertain(
    n_objects: int = 90,
    n_clusters: int = 3,
    n_attributes: int = 2,
    separation: float = 4.0,
    uncertainty_std: float = 0.4,
    mass: float = 0.95,
    seed: SeedLike = None,
) -> UncertainDataset:
    """Quick uncertain-blob dataset for examples and tests.

    Generates Gaussian blobs and wraps every point as a truncated-Normal
    uncertain object with per-dimension std ``uncertainty_std`` (times a
    random per-object factor in [0.5, 1.5]).
    """
    rng = ensure_rng(seed)
    points, labels = make_classification_like(
        n_objects=n_objects,
        n_attributes=n_attributes,
        n_classes=n_clusters,
        separation=separation,
        lobes=1,
        outlier_rate=0.0,
        seed=rng,
    )
    objects = []
    for idx in range(n_objects):
        factor = rng.uniform(0.5, 1.5)
        std = np.full(n_attributes, uncertainty_std * factor)
        objects.append(
            UncertainObject.gaussian(
                points[idx], std, mass=mass, label=int(labels[idx])
            )
        )
    return UncertainDataset(objects)
