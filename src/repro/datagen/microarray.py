"""Microarray probe-level uncertainty simulator (S21).

The paper's "real" datasets are gene-expression matrices (Neuroblastoma
22,282 x 14 and Leukaemia 22,690 x 21 from the Broad Institute) whose
probe-level uncertainty is extracted with the multi-mgMOS model of the
PUMA Bioconductor package and expressed as per-value Normal pdfs.

Those data and the PUMA toolchain are unavailable offline, so this
module synthesizes gene-expression datasets with the same structure
(documented substitution, DESIGN.md §4):

* objects are genes; attributes are tissue samples;
* genes belong to latent co-expression modules (so internal-criterion
  experiments have discoverable structure);
* expression values follow a log-normal signal model;
* each value carries Normal measurement uncertainty whose standard
  deviation *decreases with expression level* — the qualitative
  signature of multi-mgMOS probe-level variances (low-expressed probes
  are noisier relative to signal).

The paper evaluates these datasets with the internal criterion Q only
(no reference classes exist), which this generator matches: labels are
the latent modules and may be used or ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro._typing import SeedLike
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class MicroarraySpec:
    """Shape of one real-dataset stand-in (mirrors Table 1-(b)).

    Attributes
    ----------
    name:
        Dataset name as used in the paper.
    n_genes, n_tissues:
        Objects / attributes per Table 1-(b).
    n_modules:
        Latent co-expression modules (cluster structure).
    """

    name: str
    n_genes: int
    n_tissues: int
    n_modules: int


#: Registry reproducing Table 1-(b) of the paper.
MICROARRAY_SPECS: Dict[str, MicroarraySpec] = {
    spec.name: spec
    for spec in (
        MicroarraySpec("neuroblastoma", 22282, 14, 8),
        MicroarraySpec("leukaemia", 22690, 21, 10),
    )
}


def list_microarrays() -> Tuple[str, ...]:
    """Names of the registered microarray stand-ins."""
    return tuple(MICROARRAY_SPECS)


def make_microarray(
    name: str,
    scale: float = 1.0,
    mass: float = 0.95,
    seed: SeedLike = None,
) -> UncertainDataset:
    """Uncertain gene-expression dataset named after a paper dataset.

    Parameters
    ----------
    name:
        ``"neuroblastoma"`` or ``"leukaemia"``.
    scale:
        Fraction of the paper's gene count (paper-scale data is ~22k
        objects; the experiments default to reduced sizes).
    mass:
        Probability mass retained by each truncated-Normal region.
    """
    key = name.lower()
    if key not in MICROARRAY_SPECS:
        raise InvalidParameterError(
            f"unknown microarray dataset {name!r}; known: {sorted(MICROARRAY_SPECS)}"
        )
    if not (0.0 < scale <= 1.0):
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    spec = MICROARRAY_SPECS[key]
    n_genes = max(spec.n_modules * 4, int(round(spec.n_genes * scale)))
    return make_probe_level_dataset(
        n_genes=n_genes,
        n_tissues=spec.n_tissues,
        n_modules=spec.n_modules,
        mass=mass,
        seed=seed,
    )


def make_probe_level_dataset(
    n_genes: int,
    n_tissues: int,
    n_modules: int,
    base_level: float = 7.0,
    module_spread: float = 2.0,
    within_module_std: float = 0.6,
    noise_floor: float = 0.15,
    noise_slope: float = 0.9,
    mass: float = 0.95,
    seed: SeedLike = None,
) -> UncertainDataset:
    """General probe-level microarray simulator.

    Signal model (log2 scale, typical Affymetrix range ~[2, 14]):

    * module profiles: per-module, per-tissue means
      ``N(base_level, module_spread^2)``;
    * gene expression: module profile + gene offset
      ``N(0, within_module_std^2)`` per tissue;
    * probe-level std (multi-mgMOS-like, decreasing in expression):
      ``sd = noise_floor + noise_slope / (1 + exp(expr - base_level))``.

    Every value becomes a truncated-Normal marginal with that std and a
    region holding ``mass`` of the pdf; gene labels record the latent
    module.
    """
    if n_genes < n_modules:
        raise InvalidParameterError(
            f"need n_genes >= n_modules, got {n_genes} < {n_modules}"
        )
    if n_tissues < 1 or n_modules < 1:
        raise InvalidParameterError("n_tissues and n_modules must be >= 1")
    rng = ensure_rng(seed)

    module_profiles = rng.normal(
        base_level, module_spread, size=(n_modules, n_tissues)
    )
    modules = rng.integers(0, n_modules, size=n_genes)
    # Every module keeps at least one gene.
    modules[:n_modules] = np.arange(n_modules)

    expression = (
        module_profiles[modules]
        + rng.normal(0.0, within_module_std, size=(n_genes, n_tissues))
    )
    # multi-mgMOS-like heteroscedastic probe noise: lower expression =>
    # larger standard deviation (logistic decay around base_level).
    probe_std = noise_floor + noise_slope / (
        1.0 + np.exp(expression - base_level)
    )

    objects = []
    for g in range(n_genes):
        objects.append(
            UncertainObject.gaussian(
                expression[g], probe_std[g], mass=mass, label=int(modules[g])
            )
        )
    return UncertainDataset(objects)
