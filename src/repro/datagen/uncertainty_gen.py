"""Uncertainty generation over deterministic datasets — Section 5.1 (S22).

The paper's evaluation pipeline, reproduced faithfully:

1. For every deterministic point ``w`` of a benchmark dataset, generate
   a pdf ``f_w`` whose *expected value is exactly* ``w`` while every
   other parameter (uniform width, normal std, exponential rate and
   direction) is chosen at random.  Three families: Uniform, Normal,
   Exponential.
2. **Case 1** — build a *perturbed deterministic* dataset ``D'`` by
   replacing each ``w`` with one draw from ``f_w`` (Monte Carlo, or
   Markov-Chain Monte Carlo when ``use_mcmc=True`` — the paper invokes
   both via the SSJ library).
3. **Case 2** — build the *uncertain* dataset ``D''`` whose object for
   ``w`` is ``(R, f_w)`` with ``R`` the region containing ``mass``
   (default 95%) of ``f_w``'s probability.

Both datasets derive from the *same* per-point pdfs, which is what makes
``Theta = F(C'') - F(C')`` a paired comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._typing import SeedLike
from repro.exceptions import InvalidParameterError
from repro.objects.dataset import UncertainDataset
from repro.objects.uncertain_object import UncertainObject
from repro.uncertainty.base import UnivariateDistribution
from repro.uncertainty.exponential import TruncatedExponentialDistribution
from repro.uncertainty.normal import TruncatedNormalDistribution
from repro.uncertainty.product import IndependentProduct
from repro.uncertainty.sampling import MetropolisHastingsSampler
from repro.uncertainty.uniform import UniformDistribution
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability, ensure_matrix

#: The pdf families of the paper's Table 2 (U / N / E).
PDF_FAMILIES = ("uniform", "normal", "exponential")


@dataclass(frozen=True)
class UncertainDataPair:
    """The paired outputs of the Section 5.1 generation strategy.

    Attributes
    ----------
    perturbed:
        ``D'`` — deterministic dataset of one draw per point (Case 1).
    uncertain:
        ``D''`` — uncertain dataset of truncated pdfs (Case 2).
    """

    perturbed: UncertainDataset
    uncertain: UncertainDataset


class UncertaintyGenerator:
    """Per-point pdf assignment and the Case-1/Case-2 dataset pair.

    Parameters
    ----------
    family:
        ``"uniform"``, ``"normal"`` or ``"exponential"``.
    spread:
        Overall uncertainty magnitude: per-point scales are drawn from
        ``U(0.1, 1.0) * spread * column_std``.  Dimensionless knob; the
        paper leaves the analogous choice unspecified ("randomly
        chosen"), 0.5-1.0 reproduces its qualitative regime.
    mass:
        Probability mass the Case-2 region must contain (paper: 95%).
    use_mcmc:
        Perturb via a Metropolis-Hastings chain instead of direct Monte
        Carlo draws (the paper uses both).
    """

    def __init__(
        self,
        family: str = "normal",
        spread: float = 0.75,
        mass: float = 0.95,
        use_mcmc: bool = False,
    ):
        family = family.lower()
        if family not in PDF_FAMILIES:
            raise InvalidParameterError(
                f"family must be one of {PDF_FAMILIES}, got {family!r}"
            )
        if spread <= 0:
            raise InvalidParameterError(f"spread must be > 0, got {spread}")
        check_probability(mass, "mass")
        if mass <= 0.0:
            raise InvalidParameterError("mass must be positive")
        self.family = family
        self.spread = float(spread)
        self.mass = float(mass)
        self.use_mcmc = bool(use_mcmc)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def generate(
        self,
        points: np.ndarray,
        labels: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> UncertainDataPair:
        """Generate the Case-1 / Case-2 dataset pair for ``points``."""
        pts = ensure_matrix(points, "points")
        n, m = pts.shape
        if labels is not None and len(labels) != n:
            raise InvalidParameterError("labels length must match points rows")
        rng = ensure_rng(seed)

        # Per-point, per-dimension uncertainty scales relative to each
        # column's spread ("randomly chosen" parameters of the paper).
        column_std = pts.std(axis=0)
        column_std = np.where(column_std > 0, column_std, 1.0)
        scales = rng.uniform(0.1, 1.0, size=(n, m)) * self.spread * column_std

        perturbed_objects: List[UncertainObject] = []
        uncertain_objects: List[UncertainObject] = []
        mcmc = (
            MetropolisHastingsSampler(seed=rng) if self.use_mcmc else None
        )
        for i in range(n):
            label = None if labels is None else int(labels[i])
            full_marginals = self._point_pdf(pts[i], scales[i], rng, mass=1.0)
            trunc_marginals = self._point_pdf(pts[i], scales[i], rng, mass=self.mass,
                                              reuse=full_marginals)
            full = IndependentProduct(full_marginals)
            truncated = IndependentProduct(trunc_marginals)

            draw = self._perturb(full, truncated, mcmc, rng)
            perturbed_objects.append(UncertainObject.from_point(draw, label=label))
            uncertain_objects.append(UncertainObject(truncated, label=label))
        return UncertainDataPair(
            perturbed=UncertainDataset(perturbed_objects),
            uncertain=UncertainDataset(uncertain_objects),
        )

    def uncertain_dataset(
        self,
        points: np.ndarray,
        labels: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> UncertainDataset:
        """Only the Case-2 uncertain dataset (``D''``)."""
        return self.generate(points, labels, seed).uncertain

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _point_pdf(
        self,
        point: np.ndarray,
        scales: np.ndarray,
        rng: np.random.Generator,
        mass: float,
        reuse: Optional[List[UnivariateDistribution]] = None,
    ) -> List[UnivariateDistribution]:
        """Marginals of ``f_w`` with expected value = ``point``.

        When ``reuse`` is given (the untruncated marginals), the same
        parameters are re-truncated to ``mass`` instead of re-drawing —
        guaranteeing D' and D'' share the same underlying pdf.
        """
        marginals: List[UnivariateDistribution] = []
        for j, (w, s) in enumerate(zip(point, scales)):
            if self.family == "uniform":
                if reuse is not None:
                    base = reuse[j]
                    half = 0.5 * (base.support_upper - base.support_lower)
                    center = 0.5 * (base.support_upper + base.support_lower)
                else:
                    half = float(s) * np.sqrt(3.0)  # std s => half-width s*sqrt(3)
                    center = float(w)
                # A uniform's central `mass` interval is just a narrower
                # uniform around the same center.
                marginals.append(
                    UniformDistribution.centered(center, half * mass)
                    if mass < 1.0
                    else UniformDistribution.centered(center, half)
                )
            elif self.family == "normal":
                if reuse is not None:
                    base = reuse[j]
                    loc = base.loc  # type: ignore[attr-defined]
                    scale = base.scale  # type: ignore[attr-defined]
                else:
                    loc = float(w)
                    scale = float(s)
                marginals.append(
                    TruncatedNormalDistribution.central_mass(loc, scale, mass)
                )
            else:  # exponential
                if reuse is not None:
                    base = reuse[j]
                    rate = base.rate  # type: ignore[attr-defined]
                    direction = base.direction  # type: ignore[attr-defined]
                    mean = base.origin + direction / rate  # type: ignore[attr-defined]
                else:
                    rate = 1.0 / float(s)
                    direction = 1 if rng.random() < 0.5 else -1
                    mean = float(w)
                marginals.append(
                    TruncatedExponentialDistribution.with_mean(
                        mean, rate, direction=direction, mass=mass
                    )
                )
        return marginals

    def _perturb(
        self,
        full: IndependentProduct,
        truncated: IndependentProduct,
        mcmc: Optional[MetropolisHastingsSampler],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One perturbation draw from ``f_w`` (MC or MCMC)."""
        if mcmc is None:
            return full.sample(1, rng)[0]
        # MCMC needs a bounded support: target the truncated pdf, whose
        # region carries `mass` of f_w — the perturbations the paper
        # draws are equally representative of f_w.
        return mcmc.draw(truncated.pdf, truncated.region, size=1)[0]
